//! Synthetic trace generation from a [`WorkloadSpec`].
//!
//! Each workload is modeled as a set of concurrent access *streams*
//! (bank-level parallelism). A stream owns a contiguous region of rows
//! spread across banks; on each access it either stays in its current
//! row (sequential columns — a row-buffer hit under open-page policy)
//! or jumps to a fresh random row in its region. Accesses arrive in
//! bursts separated by long compute gaps sized so the overall memory
//! intensity matches the spec's MPKI.
//!
//! For `phased` workloads (Leslie, Fig. 19) the row-jump probability
//! alternates between a high- and a low-locality phase every
//! `PHASE_LEN` accesses, which produces the large open-vs-close
//! hit-rate gap and the PHRC tracking lag the paper analyzes.

use crate::spec::WorkloadSpec;
use nuat_cpu::{MemOp, Trace, TraceRecord};
use nuat_types::{AddressMapping, Bank, Channel, Col, DecodedAddr, DramGeometry, Rank, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Accesses per locality phase for `phased` workloads.
const PHASE_LEN: usize = 600;

#[derive(Debug, Clone, Copy)]
struct Stream {
    channel: u32,
    bank: u32,
    rank: u32,
    base_row: u32,
    row: u32,
    col: u32,
}

/// Deterministic trace generator. Identical `(spec, seed, len)` inputs
/// produce identical traces.
///
/// # Examples
///
/// ```
/// use nuat_workloads::{by_name, TraceGenerator};
/// use nuat_types::DramGeometry;
///
/// let spec = by_name("libq").expect("Table 2 workload");
/// let trace = TraceGenerator::new(spec, DramGeometry::default(), 7).generate(500);
/// assert_eq!(trace.mem_ops(), 500);
/// assert!((trace.mpki() - spec.mpki).abs() / spec.mpki < 0.3);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    geometry: DramGeometry,
    rng: StdRng,
    streams: Vec<Stream>,
    generated: usize,
}

impl TraceGenerator {
    /// Creates a generator for `spec` against the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(spec: WorkloadSpec, geometry: DramGeometry, seed: u64) -> Self {
        geometry.validate().expect("invalid geometry");
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(spec.name));
        let banks = (geometry.banks_per_rank * geometry.ranks_per_channel) as u32;
        let rows = geometry.rows_per_bank as u32;
        let streams = (0..spec.streams)
            .map(|i| {
                // Spread streams channel-first, then across banks and
                // ranks, so multi-channel systems see balanced load.
                let channel = (i as u32) % geometry.channels as u32;
                let j = (i as u32) / geometry.channels as u32;
                let bank = j % (geometry.banks_per_rank as u32);
                let rank = (j / geometry.banks_per_rank as u32) % geometry.ranks_per_channel as u32;
                let base_row = rng.gen_range(0..rows.saturating_sub(spec.footprint_rows).max(1));
                Stream {
                    channel,
                    bank,
                    rank,
                    base_row,
                    row: base_row,
                    col: 0,
                }
            })
            .collect();
        let _ = banks;
        TraceGenerator {
            spec,
            geometry,
            rng,
            streams,
            generated: 0,
        }
    }

    /// Generates a trace containing `mem_ops` memory operations.
    pub fn generate(&mut self, mem_ops: usize) -> Trace {
        let mut records = Vec::with_capacity(mem_ops);
        let mean_gap = self.spec.mean_gap();
        let burst_len = self.spec.burst_len.max(1) as usize;
        // The long gap between bursts restores the target mean:
        // burst_len accesses at gap_in_burst + one long gap.
        let in_burst = self.spec.gap_in_burst as f64;
        let long_gap = ((mean_gap - in_burst) * burst_len as f64).max(0.0).round() as u32;

        let mut in_burst_left = burst_len;
        for _ in 0..mem_ops {
            let gap = if in_burst_left == burst_len {
                // First access of a burst carries the long compute gap.
                long_gap + self.spec.gap_in_burst
            } else {
                self.spec.gap_in_burst
            };
            in_burst_left -= 1;
            if in_burst_left == 0 {
                in_burst_left = burst_len;
            }

            let op = if self.rng.gen_bool(self.spec.read_fraction) {
                MemOp::Read
            } else {
                MemOp::Write
            };
            let addr = self.next_address();
            records.push(TraceRecord { gap, op, addr });
            self.generated += 1;
        }
        Trace::new(records, self.spec.gap_in_burst)
    }

    fn locality(&self) -> f64 {
        if !self.spec.phased {
            return self.spec.row_locality;
        }
        // Alternate around the nominal locality: a tight streaming phase
        // and a scattered phase (Fig. 19(b)'s non-bursting pattern).
        // The swing is what produces the paper's large open-vs-close
        // hit-rate gap for leslie (0.65 vs 0.28) and the PHRC lag.
        if (self.generated / PHASE_LEN).is_multiple_of(2) {
            (self.spec.row_locality + 0.26).min(0.98)
        } else {
            (self.spec.row_locality - 0.60).max(0.02)
        }
    }

    fn next_address(&mut self) -> nuat_types::PhysAddr {
        let idx = self.rng.gen_range(0..self.streams.len());
        let locality = self.locality();
        let cols = self.geometry.cols_per_row as u32;
        let rows = self.geometry.rows_per_bank as u32;
        let s = &mut self.streams[idx];
        if self.rng.gen_bool(locality) {
            // Stay in the row, advance the column.
            s.col = (s.col + 1) % cols;
        } else {
            // Jump to a new row in the stream's region.
            let span = self.spec.footprint_rows.max(1);
            s.row = (s.base_row + self.rng.gen_range(0..span)) % rows;
            s.col = self.rng.gen_range(0..cols);
        }
        let decoded = DecodedAddr {
            channel: Channel::new(s.channel),
            rank: Rank::new(s.rank),
            bank: Bank::new(s.bank),
            row: Row::new(s.row),
            col: Col::new(s.col),
        };
        self.geometry
            .encode(decoded, AddressMapping::OpenPageBaseline)
            .expect("stream coordinates are in range")
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each workload gets a distinct deterministic stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::by_name;
    use std::collections::HashSet;

    fn geometry() -> DramGeometry {
        DramGeometry::default()
    }

    fn gen(name: &str, seed: u64, n: usize) -> Trace {
        TraceGenerator::new(by_name(name).unwrap(), geometry(), seed).generate(n)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen("ferret", 1, 500);
        let b = gen("ferret", 1, 500);
        assert_eq!(a, b);
        let c = gen("ferret", 2, 500);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn mpki_matches_spec_within_tolerance() {
        for name in ["comm1", "libq", "black", "MT-fluid"] {
            let spec = by_name(name).unwrap();
            let t = gen(name, 7, 4000);
            let rel = (t.mpki() - spec.mpki).abs() / spec.mpki;
            assert!(
                rel < 0.25,
                "{name}: trace mpki {} vs spec {}",
                t.mpki(),
                spec.mpki
            );
        }
    }

    #[test]
    fn read_fraction_matches_spec() {
        let spec = by_name("mummer").unwrap();
        let t = gen("mummer", 3, 5000);
        let frac = t.reads() as f64 / t.mem_ops() as f64;
        assert!((frac - spec.read_fraction).abs() < 0.05);
    }

    #[test]
    fn locality_orders_row_reuse() {
        // libq (locality .88) must reuse rows much more than ferret (.18).
        // Row changes are tracked per bank: exactly what an open-page
        // row buffer would see.
        let libq = row_changes(&gen("libq", 11, 3000));
        let ferret = row_changes(&gen("ferret", 11, 3000));
        assert!(
            libq * 2 < ferret,
            "libq row changes {libq} must be well below ferret {ferret}"
        );
    }

    #[test]
    fn streams_spread_across_banks() {
        let t = gen("MT-canneal", 5, 2000);
        let g = geometry();
        let banks: HashSet<u32> = t
            .records()
            .iter()
            .map(|r| {
                g.decode(r.addr, AddressMapping::OpenPageBaseline)
                    .bank
                    .raw()
            })
            .collect();
        assert!(banks.len() >= 6, "16 streams must cover most of 8 banks");
    }

    /// Per-bank row changes: what an open-page row buffer would see.
    fn row_changes_slice(records: &[TraceRecord]) -> usize {
        let g = geometry();
        let mut last: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut c = 0;
        for r in records {
            let d = g.decode(r.addr, AddressMapping::OpenPageBaseline);
            if last.insert(d.bank.raw(), d.row.raw()) != Some(d.row.raw()) {
                c += 1;
            }
        }
        c
    }

    fn row_changes(t: &Trace) -> usize {
        row_changes_slice(t.records())
    }

    #[test]
    fn phased_workload_alternates_locality() {
        let t = gen("leslie", 9, 4 * PHASE_LEN);
        // Count row changes separately in the first and second phase.
        let tight = row_changes_slice(&t.records()[0..PHASE_LEN]);
        let scattered = row_changes_slice(&t.records()[PHASE_LEN..2 * PHASE_LEN]);
        assert!(
            tight * 2 < scattered,
            "phase 0 ({tight} changes) must be tighter than phase 1 ({scattered})"
        );
    }

    #[test]
    fn addresses_stay_in_the_configured_capacity() {
        let g = geometry();
        let t = gen("comm3", 13, 2000);
        for r in t.records() {
            assert!(r.addr.raw() < g.capacity_bytes());
        }
    }
}
