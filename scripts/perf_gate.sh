#!/usr/bin/env bash
# Performance regression gate: re-runs the scheduler-throughput bench
# (JSON emission only — criterion suppressed) into a scratch file and
# compares EVERY (scheduler × mode × workload × queue_depth × channels)
# cell against the committed BENCH_scheduler.json baseline. A cell
# fails when the fresh rate drops below TOLERANCE (default 75%) of the
# committed rate; the gate fails if any cell fails. Per-cell rather
# than a single guarded row, so a regression confined to one scheduler
# or one queue depth (the depth-256 droop class of bug) cannot hide
# behind a healthy aggregate.
#
# The fresh run also appends to a scratch history file (not the
# committed BENCH_history.jsonl) so trial gate runs don't pollute the
# trajectory log.
#
# Opt-in from verify.sh via NUAT_PERF_GATE=1: wall-clock numbers are
# only meaningful on a quiet machine, so the gate must not make routine
# verification flaky on loaded CI workers. NUAT_PERF_TOLERANCE
# overrides the per-cell floor (fraction of baseline, e.g. 0.9).
#
# Alongside the human-readable delta table, the gate writes a
# machine-readable verdict (per-cell baseline/measured/ratio/pass plus
# the droop check and the overall outcome) to
# ${NUAT_PERF_GATE_JSON:-results/perf_gate.json} for CI dashboards.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_scheduler.json
TOLERANCE="${NUAT_PERF_TOLERANCE:-0.75}"
[ -s "$BASELINE" ] || { echo "perf_gate: no committed $BASELINE" >&2; exit 1; }

# Host-fingerprint guard: the committed baseline's wall-clock rates are
# only comparable on the machine (and power state) that produced them.
# The trajectory log records a host fingerprint per run; when the most
# recent recorded cpu/governor differs from this host's, every hard
# failure below is downgraded to a warning — the numbers still print
# and the verdict JSON still records them, but a foreign box cannot
# fail the gate on throughput it was never expected to reproduce.
HISTORY=BENCH_history.jsonl
rec_host=$(awk 'match($0, /"host": \{[^}]*\}/) { print substr($0, RSTART + 8, RLENGTH - 8) }' \
    "$HISTORY" 2>/dev/null | tail -1)
rec_cpu=$(printf '%s' "$rec_host" | sed -n 's/.*"cpu": "\([^"]*\)".*/\1/p')
rec_gov=$(printf '%s' "$rec_host" | sed -n 's/.*"governor": "\([^"]*\)".*/\1/p')
cur_cpu=$(awk -F': ' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || true)
cur_gov=$(cat /sys/devices/system/cpu/cpu0/cpufreq/scaling_governor 2>/dev/null || true)
cross_host=false
if [ -n "$rec_cpu" ] && { [ "$rec_cpu" != "$cur_cpu" ] || [ "$rec_gov" != "$cur_gov" ]; }; then
    cross_host=true
    echo "perf_gate: WARNING baseline host differs from this host — failures downgraded to warnings" >&2
    echo "perf_gate:   recorded: cpu '$rec_cpu' governor '${rec_gov:-?}'" >&2
    echo "perf_gate:   current:  cpu '${cur_cpu:-?}' governor '${cur_gov:-?}'" >&2
fi

fresh_json=$(mktemp)
fresh_hist=$(mktemp)
trap 'rm -f "$fresh_json" "$fresh_hist"' EXIT
NUAT_BENCH_JSON_ONLY=1 NUAT_BENCH_OUT="$fresh_json" NUAT_BENCH_HISTORY="$fresh_hist" \
    cargo bench -q -p nuat-bench --bench scheduler_throughput >/dev/null

# Rows are single-line JSON objects with explicit field names, so awk
# suffices (no jq in the image). Key: scheduler|mode|workload|depth|channels.
# Older baselines without a "channels" field default that key part to 1.
rates() {
    awk '
        /"scheduler":/ {
            sched = mode = wl = depth = chans = rate = ""
            if (match($0, /"scheduler": "[^"]*"/))
                sched = substr($0, RSTART + 14, RLENGTH - 15)
            if (match($0, /"mode": "[^"]*"/))
                mode = substr($0, RSTART + 9, RLENGTH - 10)
            if (match($0, /"workload": "[^"]*"/))
                wl = substr($0, RSTART + 13, RLENGTH - 14)
            if (match($0, /"queue_depth": [0-9]+/))
                depth = substr($0, RSTART + 15, RLENGTH - 15)
            chans = 1
            if (match($0, /"channels": [0-9]+/))
                chans = substr($0, RSTART + 12, RLENGTH - 12)
            if (match($0, /"simulated_cycles_per_sec": [0-9.]+/))
                rate = substr($0, RSTART + 28, RLENGTH - 28)
            if (sched != "" && rate != "")
                print sched "|" mode "|" wl "|" depth "|" chans " " rate
        }
    ' "$1"
}

base_rates=$(rates "$BASELINE")
fresh_rates=$(rates "$fresh_json")
[ -n "$base_rates" ] || { echo "perf_gate: no rows in $BASELINE" >&2; exit 1; }
[ -n "$fresh_rates" ] || { echo "perf_gate: no rows in fresh bench output" >&2; exit 1; }

# Full per-cell delta table: every cell is compared and printed —
# baseline, measured, measured/baseline ratio, the tolerance floor it
# is held to, and a verdict — so a failing run shows the complete
# regression picture, not just the first offender. The table goes to
# stdout; the regression summary lines repeat on stderr so CI logs
# that capture only stderr still name every failing cell. Exit status
# is decided once, after the whole table has printed.
fail=0
checked=0
regressions=""
cells_json=""
printf 'perf_gate: %-42s %13s %13s %7s %7s  %s\n' \
    "cell (sched|mode|workload|depth|chans)" "baseline" "measured" "ratio" "floor" "verdict"
while read -r key base; do
    fresh=$(printf '%s\n' "$fresh_rates" | awk -v k="$key" '$1 == k { print $2; exit }')
    if [ -z "$fresh" ]; then
        printf 'perf_gate: %-42s %13.0f %13s %7s %7s  %s\n' \
            "$key" "$base" "-" "-" "$TOLERANCE" "MISSING"
        regressions="${regressions}perf_gate: MISSING cell $key in fresh run\n"
        cells_json="${cells_json}${cells_json:+,
}    {\"cell\": \"${key}\", \"baseline\": ${base}, \"measured\": null, \"ratio\": null, \"pass\": false}"
        fail=1
        continue
    fi
    checked=$((checked + 1))
    ratio=$(awk -v f="$fresh" -v b="$base" 'BEGIN { printf "%.3f", f / b }')
    if awk -v f="$fresh" -v b="$base" -v t="$TOLERANCE" 'BEGIN { exit !(f >= t * b) }'; then
        verdict=ok
        cell_pass=true
    else
        verdict=FAIL
        cell_pass=false
        regressions="${regressions}perf_gate: FAIL $key measured ${fresh} < ${TOLERANCE} x baseline ${base} (ratio ${ratio})\n"
        fail=1
    fi
    cells_json="${cells_json}${cells_json:+,
}    {\"cell\": \"${key}\", \"baseline\": ${base}, \"measured\": ${fresh}, \"ratio\": ${ratio}, \"pass\": ${cell_pass}}"
    printf 'perf_gate: %-42s %13.0f %13.0f %7s %7s  %s\n' \
        "$key" "$base" "$fresh" "$ratio" "$TOLERANCE" "$verdict"
done <<< "$base_rates"

[ "$checked" -gt 0 ] || { echo "perf_gate: no cells compared" >&2; exit 1; }

# Depth-droop gate: the interleaved depth-64-vs-256 gap (the one
# drift-cancelled number in the file) must stay at or below the 5%
# target, or — while the residual L1-capacity droop keeps the honest
# value above that — within NUAT_DROOP_SLACK points (default 3) of the
# committed baseline gap, so the gap can only ratchet down.
droop_gap() {
    awk '/"depth_droop"|"mode": "interleaved"/ {
        if (match($0, /"gap_percent": -?[0-9.]+/))
            { print substr($0, RSTART + 15, RLENGTH - 15); exit }
    }' "$1"
}
base_gap=$(droop_gap "$BASELINE")
fresh_gap=$(droop_gap "$fresh_json")
droop_pass=false
if [ -n "$base_gap" ] && [ -n "$fresh_gap" ]; then
    slack="${NUAT_DROOP_SLACK:-3}"
    if awk -v f="$fresh_gap" -v b="$base_gap" -v s="$slack" \
        'BEGIN { cap = b + s; if (5.0 > cap) cap = 5.0; exit !(f <= cap) }'; then
        echo "perf_gate: depth_droop ok (gap ${fresh_gap}% vs baseline ${base_gap}%, slack ${slack})"
        droop_pass=true
    else
        echo "perf_gate: FAIL depth_droop gap ${fresh_gap}% exceeds baseline ${base_gap}% + ${slack} (and the 5% target)" >&2
        fail=1
    fi
else
    echo "perf_gate: depth_droop row missing (baseline: '${base_gap:-none}', fresh: '${fresh_gap:-none}')" >&2
    fail=1
fi
# Machine-readable verdict, written whether the gate passes or fails
# (a dashboard needs the failing runs most of all).
verdict_json="${NUAT_PERF_GATE_JSON:-results/perf_gate.json}"
mkdir -p "$(dirname "$verdict_json")"
overall=true
[ "$fail" -eq 0 ] || overall=false
json_str() { printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'; }
{
    echo "{"
    echo "  \"tolerance\": ${TOLERANCE},"
    echo "  \"pass\": ${overall},"
    echo "  \"cross_host\": {\"detected\": ${cross_host}, \"recorded\": {\"cpu\": \"$(json_str "$rec_cpu")\", \"governor\": \"$(json_str "$rec_gov")\"}, \"current\": {\"cpu\": \"$(json_str "$cur_cpu")\", \"governor\": \"$(json_str "$cur_gov")\"}},"
    echo "  \"cells_checked\": ${checked},"
    echo "  \"depth_droop\": {\"baseline_gap_percent\": ${base_gap:-null}, \"measured_gap_percent\": ${fresh_gap:-null}, \"pass\": ${droop_pass}},"
    echo "  \"cells\": ["
    printf '%s\n' "$cells_json"
    echo "  ]"
    echo "}"
} > "$verdict_json"
echo "perf_gate: verdict JSON -> ${verdict_json}"

if [ "$fail" -ne 0 ]; then
    printf '%b' "$regressions" >&2
    if [ "$cross_host" = true ]; then
        echo "perf_gate: WARN — cells below ${TOLERANCE}x of baseline, but the baseline was recorded on a different host; not failing the gate" >&2
        exit 0
    fi
    echo "perf_gate: FAIL — cells regressed below ${TOLERANCE}x of baseline (full table above)" >&2
    exit 1
fi
echo "perf_gate: OK (${checked} cells within ${TOLERANCE}x of baseline)"
