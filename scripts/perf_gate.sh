#!/usr/bin/env bash
# Performance regression gate: re-runs the scheduler-throughput bench
# (JSON emission only — criterion suppressed) into a scratch file and
# compares NUAT's skip-mode end-to-end throughput on comm3 at the
# default queue depth against the committed BENCH_scheduler.json
# baseline. Fails when the fresh number regresses more than 10%.
#
# Opt-in from verify.sh via NUAT_PERF_GATE=1: wall-clock numbers are
# only meaningful on a quiet machine, so the gate must not make routine
# verification flaky on loaded CI workers.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_scheduler.json
[ -s "$BASELINE" ] || { echo "perf_gate: no committed $BASELINE" >&2; exit 1; }

# Selector for the guarded row. Rows are single-line JSON objects with
# explicit workload/queue_depth fields, so grep+sed suffices (no jq in
# the image).
extract_rate() {
    grep '"scheduler": "NUAT"' "$1" \
        | grep '"mode": "skip"' \
        | grep '"workload": "comm3"' \
        | grep '"queue_depth": 64' \
        | sed -n 's/.*"simulated_cycles_per_sec": \([0-9.]*\).*/\1/p' \
        | head -n1
}

baseline=$(extract_rate "$BASELINE")
[ -n "$baseline" ] || { echo "perf_gate: baseline row not found in $BASELINE" >&2; exit 1; }

fresh_json=$(mktemp)
trap 'rm -f "$fresh_json"' EXIT
NUAT_BENCH_JSON_ONLY=1 NUAT_BENCH_OUT="$fresh_json" \
    cargo bench -q -p nuat-bench --bench scheduler_throughput >/dev/null

fresh=$(extract_rate "$fresh_json")
[ -n "$fresh" ] || { echo "perf_gate: fresh row not found in bench output" >&2; exit 1; }

echo "perf_gate: NUAT skip comm3 depth-64: baseline ${baseline} cyc/s, fresh ${fresh} cyc/s"
awk -v f="$fresh" -v b="$baseline" 'BEGIN { exit !(f >= 0.9 * b) }' || {
    echo "perf_gate: FAIL — fresh throughput below 90% of committed baseline" >&2
    exit 1
}
echo "perf_gate: OK"
