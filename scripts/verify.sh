#!/usr/bin/env bash
# Full verification gate: formatting, release build, test suite,
# lint-clean clippy across every target, a compile check of the
# bench code (which `cargo test` does not build, so it could otherwise
# rot silently), and a smoke run of the instrumentation stack
# (trace_study self-checks its artifacts against end-of-run stats).
# CI and pre-commit both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
# Replay the determinism goldens once under forced channel sharding.
# The event calendar is on by default, so this is also the
# DES + sharded-barrier replay: workers rendezvous on calendar time
# and must be byte-identical to the sequential loop (DESIGN.md §7
# "Channel sharding" / "Unified event calendar").
NUAT_CHANNEL_JOBS=4 cargo test -q -p nuat-sim --test determinism_guard
# ... once with the unified event calendar disabled: the per-cycle
# stepping fallback must produce the same bytes (DESIGN.md §7
# "Unified event calendar").
NUAT_NO_DES=1 cargo test -q -p nuat-sim --test determinism_guard
# ... and once with the ready-set wheel disabled: the legacy full-bank
# scan must produce the same bytes (DESIGN.md §7 "Incremental ready-set
# scheduling"). Composed with NUAT_NO_DES this is the fully legacy
# loop; the wheel-off case alone also covers the calendar's
# wheel-gated controller side.
NUAT_NO_WHEEL=1 cargo test -q -p nuat-sim --test determinism_guard
NUAT_NO_DES=1 NUAT_NO_WHEEL=1 cargo test -q -p nuat-sim --test determinism_guard
# ... and with the batch issuing-tick kernel disabled: the scalar
# targeted sweeps and probing enumeration walk must produce the same
# bytes, alone and composed with the wheel-off scan path (DESIGN.md §7
# "Batch legality kernel").
NUAT_NO_BATCH=1 cargo test -q -p nuat-sim --test determinism_guard
NUAT_NO_BATCH=1 NUAT_NO_WHEEL=1 cargo test -q -p nuat-sim --test determinism_guard
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --no-run
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p nuat-bench --bin trace_study -- \
    --quick --out "$smoke_dir" --metrics "$smoke_dir/metrics.prom" >/dev/null
for f in trace.json events.jsonl timeseries.csv metrics.prom metrics.prom.jsonl; do
    test -s "$smoke_dir/$f" || { echo "verify: missing $f" >&2; exit 1; }
done
# Metrics smoke: the Prometheus exposition must be structurally sound
# (every sample line preceded by a TYPE for its series) and the key
# counters must have actually counted — a zero here means the
# instrumentation silently compiled out or lost its emission site.
awk '
    /^# TYPE nuat_/ { typed[$3] = 1 }
    /^nuat_/ {
        split($1, a, "{"); n = a[1]
        # Histogram samples are declared under the base metric name.
        sub(/_(bucket|sum|count)$/, "", n)
        if (!(a[1] in typed) && !(n in typed)) { print "untyped series " a[1]; bad = 1 }
    }
    END { exit bad }
' "$smoke_dir/metrics.prom" || { echo "verify: malformed metrics.prom" >&2; exit 1; }
for series in nuat_tick_cycles_total nuat_skip_busy_cycles_total \
    nuat_cmd_read_total nuat_wheel_rekeys_total nuat_phase_issue_nanos_total; do
    awk -v s="$series" '$0 ~ "^"s"\\{" && $NF + 0 > 0 { found = 1 } END { exit !found }' \
        "$smoke_dir/metrics.prom" \
        || { echo "verify: $series missing or zero in metrics.prom" >&2; exit 1; }
done
# The JSONL line must at least be one balanced object per channel.
awk 'NF { o = gsub(/{/, "{"); c = gsub(/}/, "}"); if (o != c || $0 !~ /^\{/) exit 1 }' \
    "$smoke_dir/metrics.prom.jsonl" \
    || { echo "verify: malformed metrics.prom.jsonl" >&2; exit 1; }
# Opt-in perf regression gate (wall-clock comparison against the
# committed BENCH_scheduler.json — only meaningful on a quiet machine).
if [ "${NUAT_PERF_GATE:-0}" = "1" ]; then
    scripts/perf_gate.sh
fi
echo "verify: OK"
