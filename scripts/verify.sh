#!/usr/bin/env bash
# Full verification gate: release build, test suite, and lint-clean
# clippy across every target. CI and pre-commit both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
echo "verify: OK"
