#!/usr/bin/env bash
# Full verification gate: formatting, release build, test suite,
# lint-clean clippy across every target, and a compile check of the
# bench code (which `cargo test` does not build, so it could otherwise
# rot silently). CI and pre-commit both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo bench --no-run
echo "verify: OK"
