//! Property-based end-to-end invariants.
//!
//! The central safety property of the reproduction: *whatever the
//! workload, NUAT never issues an activation whose promised timings
//! under-run the row's charge-dependent physical minimum* — the DRAM
//! device panics the controller if it does, so completing a run IS the
//! assertion. The remaining properties check accounting conservation
//! and latency floors across randomized workload parameters.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_sim::System;
use nuat_types::{DramGeometry, SystemConfig};
use nuat_workloads::{Suite, TraceGenerator, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1.0f64..40.0,      // mpki
        0.0f64..1.0,       // locality
        0.3f64..1.0,       // read fraction
        1usize..16,        // streams
        1u32..2048,        // footprint rows
        1u32..24,          // burst len
        0u32..16,          // gap in burst
        proptest::bool::ANY,
    )
        .prop_map(
            |(mpki, row_locality, read_fraction, streams, footprint_rows, burst_len, gap_in_burst, phased)| {
                WorkloadSpec {
                    name: "prop",
                    suite: Suite::Parsec,
                    mpki,
                    row_locality,
                    read_fraction,
                    streams,
                    footprint_rows,
                    burst_len,
                    gap_in_burst,
                    phased,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn nuat_respects_physics_for_arbitrary_workloads(
        spec in arb_spec(),
        seed in 0u64..1000,
        n_pb in 2usize..=5,
    ) {
        let trace = TraceGenerator::new(spec, DramGeometry::default(), seed).generate(400);
        let reads = trace.reads();
        let sys = System::new(
            SystemConfig::with_cores(1),
            SchedulerKind::Nuat,
            PbGrouping::paper(n_pb),
            vec![trace],
        );
        // run() panics on any physical-timing violation (device check).
        let r = sys.run(30_000_000);
        prop_assert!(r.completed, "run must finish");
        prop_assert_eq!(r.stats.reads_completed, reads);
    }

    #[test]
    fn latency_floor_holds_for_every_scheduler(
        spec in arb_spec(),
        seed in 0u64..1000,
    ) {
        for kind in [SchedulerKind::FrFcfsOpen, SchedulerKind::FrFcfsClose, SchedulerKind::Nuat] {
            let trace = TraceGenerator::new(spec, DramGeometry::default(), seed).generate(250);
            let sys = System::new(
                SystemConfig::with_cores(1),
                kind,
                PbGrouping::paper(5),
                vec![trace],
            );
            let r = sys.run(30_000_000);
            prop_assert!(r.completed);
            if r.stats.reads_completed > 0 {
                // No read can beat CL + BL/2 = 15 cycles (a pure hit).
                prop_assert!(r.avg_read_latency() >= 15.0);
            }
        }
    }

    #[test]
    fn command_counts_are_consistent(
        spec in arb_spec(),
        seed in 0u64..1000,
    ) {
        let trace = TraceGenerator::new(spec, DramGeometry::default(), seed).generate(300);
        let sys = System::new(
            SystemConfig::with_cores(1),
            SchedulerKind::Nuat,
            PbGrouping::paper(5),
            vec![trace],
        );
        let r = sys.run(30_000_000);
        prop_assert!(r.completed);
        let acts = r.stats.acts_for_reads + r.stats.acts_for_writes;
        let cols = r.stats.cols_read + r.stats.cols_write;
        // Every column requires an earlier activation of its row; with
        // hits, cols >= acts is not guaranteed in general, but every ACT
        // must serve at least one column by the time the run drains.
        prop_assert!(acts <= cols, "acts {} > cols {}", acts, cols);
        // PB histogram accounts for every activation.
        let hist: u64 = r.stats.pb_act_histogram.iter().sum();
        prop_assert_eq!(hist, acts);
        // The device agrees with the controller on command counts.
        prop_assert_eq!(r.device.energy.reads, r.stats.cols_read);
        prop_assert_eq!(r.device.energy.writes, r.stats.cols_write);
        prop_assert_eq!(r.device.energy.activates, acts);
    }
}
