//! Property-based end-to-end invariants.
//!
//! The central safety property of the reproduction: *whatever the
//! workload, NUAT never issues an activation whose promised timings
//! under-run the row's charge-dependent physical minimum* — the DRAM
//! device panics the controller if it does, so completing a run IS the
//! assertion. The remaining properties check accounting conservation
//! and latency floors across randomized workload parameters.

use nuat_circuit::PbGrouping;
use nuat_core::{MemoryController, RequestKind, SchedulerKind};
use nuat_cpu::MemOp;
use nuat_sim::System;
use nuat_types::{DramGeometry, Rank, SystemConfig};
use nuat_workloads::{Suite, TraceGenerator, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1.0f64..40.0, // mpki
        0.0f64..1.0,  // locality
        0.3f64..1.0,  // read fraction
        1usize..16,   // streams
        1u32..2048,   // footprint rows
        1u32..24,     // burst len
        0u32..16,     // gap in burst
        proptest::bool::ANY,
    )
        .prop_map(
            |(
                mpki,
                row_locality,
                read_fraction,
                streams,
                footprint_rows,
                burst_len,
                gap_in_burst,
                phased,
            )| {
                WorkloadSpec {
                    name: "prop",
                    suite: Suite::Parsec,
                    mpki,
                    row_locality,
                    read_fraction,
                    streams,
                    footprint_rows,
                    burst_len,
                    gap_in_burst,
                    phased,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn nuat_respects_physics_for_arbitrary_workloads(
        spec in arb_spec(),
        seed in 0u64..1000,
        n_pb in 2usize..=5,
    ) {
        let trace = TraceGenerator::new(spec, DramGeometry::default(), seed).generate(400);
        let reads = trace.reads();
        let sys = System::new(
            SystemConfig::with_cores(1),
            SchedulerKind::Nuat,
            PbGrouping::paper(n_pb),
            vec![trace],
        );
        // run() panics on any physical-timing violation (device check).
        let r = sys.run(30_000_000);
        prop_assert!(r.completed, "run must finish");
        prop_assert_eq!(r.stats.reads_completed, reads);
    }

    #[test]
    fn latency_floor_holds_for_every_scheduler(
        spec in arb_spec(),
        seed in 0u64..1000,
    ) {
        for kind in [SchedulerKind::FrFcfsOpen, SchedulerKind::FrFcfsClose, SchedulerKind::Nuat] {
            let trace = TraceGenerator::new(spec, DramGeometry::default(), seed).generate(250);
            let sys = System::new(
                SystemConfig::with_cores(1),
                kind,
                PbGrouping::paper(5),
                vec![trace],
            );
            let r = sys.run(30_000_000);
            prop_assert!(r.completed);
            if r.stats.reads_completed > 0 {
                // No read can beat CL + BL/2 = 15 cycles (a pure hit).
                prop_assert!(r.avg_read_latency() >= 15.0);
            }
        }
    }

    #[test]
    fn command_counts_are_consistent(
        spec in arb_spec(),
        seed in 0u64..1000,
    ) {
        let trace = TraceGenerator::new(spec, DramGeometry::default(), seed).generate(300);
        let sys = System::new(
            SystemConfig::with_cores(1),
            SchedulerKind::Nuat,
            PbGrouping::paper(5),
            vec![trace],
        );
        let r = sys.run(30_000_000);
        prop_assert!(r.completed);
        let acts = r.stats.acts_for_reads + r.stats.acts_for_writes;
        let cols = r.stats.cols_read + r.stats.cols_write;
        // Every column requires an earlier activation of its row; with
        // hits, cols >= acts is not guaranteed in general, but every ACT
        // must serve at least one column by the time the run drains.
        prop_assert!(acts <= cols, "acts {} > cols {}", acts, cols);
        // PB histogram accounts for every activation.
        let hist: u64 = r.stats.pb_act_histogram.iter().sum();
        prop_assert_eq!(hist, acts);
        // The device agrees with the controller on command counts.
        prop_assert_eq!(r.device.energy.reads, r.stats.cols_read);
        prop_assert_eq!(r.device.energy.writes, r.stats.cols_write);
        prop_assert_eq!(r.device.energy.activates, acts);
    }

    /// Event-driven busy skipping must be a pure execution-speed
    /// transform: a controller advanced with `run_for` (bulk skips)
    /// must end bit-identical to one driven strictly tick-by-tick,
    /// for arbitrary workloads with power management and refresh
    /// postponing enabled — the two features whose state machines the
    /// horizon computation must bracket exactly.
    #[test]
    fn busy_skip_equals_tick_by_tick(
        spec in arb_spec(),
        seed in 0u64..1000,
        powerdown in prop_oneof![Just(0u64), 16u64..128],
        postpone in 0u64..=2,
    ) {
        let mut cfg = SystemConfig::with_cores(1);
        cfg.controller.powerdown_after_idle = powerdown;
        cfg.controller.refresh_postpone_batches = postpone;
        let trace = TraceGenerator::new(spec, cfg.dram.geometry, seed).generate(150);

        let mut fast = MemoryController::new(cfg, SchedulerKind::Nuat);
        let mut slow = MemoryController::new(cfg, SchedulerKind::Nuat);
        // The reference runs the legacy per-tick loop: with skipping
        // disabled no busy horizon is ever computed, so every cycle
        // executes the full decision pipeline.
        slow.set_cycle_skip(false);

        // Replay the trace into both controllers at identical cycles,
        // bulk-advancing the fast one and single-stepping the slow one
        // between arrivals.
        let advance = |fast: &mut MemoryController, slow: &mut MemoryController, dt: u64| {
            fast.run_for(dt);
            for _ in 0..dt {
                slow.tick();
            }
        };
        for rec in trace.records() {
            advance(&mut fast, &mut slow, rec.gap as u64 / 4 + 1);
            let kind = match rec.op {
                MemOp::Read => RequestKind::Read,
                MemOp::Write => RequestKind::Write,
            };
            // Acceptance must agree (identical state); skip the record
            // in both when a queue is full so they stay in lockstep.
            prop_assert_eq!(fast.can_accept(kind), slow.can_accept(kind));
            if fast.can_accept(kind) {
                fast.enqueue(0, kind, rec.addr);
                slow.enqueue(0, kind, rec.addr);
            }
        }
        // Drain, then idle across two refresh-batch intervals and the
        // power-down threshold so every horizon source is exercised.
        advance(&mut fast, &mut slow, 120_000);

        prop_assert_eq!(fast.now(), slow.now());
        prop_assert_eq!(fast.stats(), slow.stats());
        prop_assert_eq!(fast.device().stats(), slow.device().stats());
        prop_assert_eq!(
            fast.device().total_powerdown_cycles(),
            slow.device().total_powerdown_cycles()
        );
        prop_assert_eq!(
            fast.refresh_engine(Rank::new(0)).batches_done(),
            slow.refresh_engine(Rank::new(0)).batches_done()
        );
        // The transform actually engaged — this is a skip test, not a
        // vacuous equality of two per-tick runs.
        prop_assert!(fast.cycles_skipped() > 0);
        prop_assert_eq!(slow.cycles_skipped(), 0);
    }
}
