//! Property test for the data-oriented issuing-tick kernel: a run with
//! the SWAR batch legality kernel (the default) must be byte-identical
//! to the retained scalar path (the `NUAT_NO_BATCH=1` escape hatch,
//! forced per-controller via `MemoryController::set_batch_kernel`) —
//! same stats fingerprint, same per-channel command/event stream, same
//! epoch samples — for every scheduler and random workload pairs at the
//! two queue depths the issue's acceptance bar names (32 and 256).
//!
//! Two independent checks:
//!
//! 1. End-to-end A/B (`prop_batch_equals_scalar` + the deterministic
//!    smoke): whole runs with the kernel on vs off. As with the wheel
//!    escape hatch, only the *skip structure* may differ — batch-mode
//!    full-rank re-keys are sound supersets of the scalar targeted
//!    sweeps, so the wheel's busy horizon can be momentarily looser or
//!    tighter while every observable outcome stays bit-exact.
//!    Fingerprints therefore exclude `cycles_skipped`, epochs are
//!    compared with that field normalized, and `QuietSpan` events are
//!    filtered (same contract as `prop_wheel_equals_scan`).
//!
//! 2. In-situ oracle (`prop_swar_lanes_match_scalar_oracle`): step live
//!    systems and call `debug_check_batch_vs_scalar` on every
//!    controller at random points, asserting — against the *actual*
//!    mid-run timing state, not a synthetic one — that the packed-lane
//!    ready bitmaps, per-bank batch keys, and the fused horizon
//!    min-reduction all equal the scalar `BankGates`/`bank_key` oracle.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_obs::{EpochSample, MemorySink, TraceEvent};
use nuat_sim::{traces_for, RunConfig, SimResult, System};
use nuat_types::{DramGeometry, SystemConfig};
use nuat_workloads::by_name;
use proptest::prelude::*;

const WORKLOADS: [&str; 6] = ["black", "face", "ferret", "comm1", "libq", "mummer"];
const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Fcfs,
    SchedulerKind::FrFcfsOpen,
    SchedulerKind::FrFcfsClose,
    SchedulerKind::Nuat,
];

/// Every scalar a run produces, bit-exact (`cycles_skipped` deliberately
/// excluded — see the module docs).
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &SimResult,
) -> (
    u64,
    u64,
    u64,
    u64,
    u64,
    nuat_dram::DeviceStats,
    u64,
    u64,
    Vec<u64>,
) {
    (
        r.mc_cycles,
        r.execution_cpu_cycles,
        r.stats.total_read_latency,
        r.stats.reads_completed,
        r.stats.writes_drained,
        r.device,
        r.powerdown_cycles,
        r.energy_pj.to_bits(),
        r.core_finish_cpu_cycles.clone(),
    )
}

/// Epoch samples with the skip-split normalized out.
fn normalized_epochs(sink: &MemorySink) -> Vec<EpochSample> {
    sink.epochs
        .iter()
        .map(|e| EpochSample {
            cycles_skipped: 0,
            ..e.clone()
        })
        .collect()
}

/// The observable event stream: everything except `QuietSpan`.
fn observable_events(sink: &MemorySink) -> Vec<TraceEvent> {
    sink.events
        .iter()
        .filter(|e| !matches!(e, TraceEvent::QuietSpan { .. }))
        .copied()
        .collect()
}

fn config_for(channels: u64, depth: usize, cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_cores(cores);
    cfg.dram.geometry = DramGeometry {
        channels,
        ..DramGeometry::default()
    };
    cfg.controller.read_queue_capacity = depth;
    cfg.controller.write_queue_capacity = depth;
    cfg.controller.write_high_watermark = depth * 40 / 64;
    cfg.controller.write_low_watermark = depth * 20 / 64;
    cfg
}

/// One instrumented run with the batch legality kernel forced on or off
/// on every channel controller.
fn run_with(
    batch: bool,
    scheduler: SchedulerKind,
    channels: u64,
    depth: usize,
    workloads: &[&str],
    mem_ops: usize,
) -> (SimResult, Vec<MemorySink>) {
    let cfg = config_for(channels, depth, workloads.len());
    let rc = RunConfig {
        mem_ops_per_core: mem_ops,
        ..RunConfig::quick()
    };
    let specs: Vec<_> = workloads.iter().map(|w| by_name(w).unwrap()).collect();
    let traces = traces_for(&specs, &cfg, &rc);
    let mut sys = System::with_sinks(
        cfg,
        scheduler,
        PbGrouping::paper(5),
        traces,
        vec![MemorySink::default(); channels as usize],
        None,
    );
    for mc in sys.controllers_mut() {
        mc.set_batch_kernel(batch);
    }
    sys.run_traced(rc.max_mc_cycles, 0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Batch kernel vs scalar path, all four schedulers per sampled
    /// configuration at depths 32 and 256: fingerprints, per-channel
    /// event streams (every DRAM command in issue order) and normalized
    /// epoch samples must match exactly.
    #[test]
    fn prop_batch_equals_scalar(
        channels in prop_oneof![Just(1u64), Just(2u64)],
        depth in prop_oneof![Just(32usize), Just(256usize)],
        w0 in 0usize..WORKLOADS.len(),
        w1 in 0usize..WORKLOADS.len(),
        mem_ops in 150usize..400,
    ) {
        let workloads = [WORKLOADS[w0], WORKLOADS[w1]];
        for scheduler in SCHEDULERS {
            let (batch, batch_sinks) =
                run_with(true, scheduler, channels, depth, &workloads, mem_ops);
            let (scalar, scalar_sinks) =
                run_with(false, scheduler, channels, depth, &workloads, mem_ops);
            prop_assert!(batch.completed, "{:?} batch run must finish", scheduler);
            prop_assert_eq!(
                fingerprint(&batch),
                fingerprint(&scalar),
                "fingerprint diverged for {:?} ({} channels, depth {})",
                scheduler, channels, depth
            );
            prop_assert_eq!(batch_sinks.len(), scalar_sinks.len());
            for (ch, (b, s)) in batch_sinks.iter().zip(&scalar_sinks).enumerate() {
                let (be, se) = (observable_events(b), observable_events(s));
                prop_assert!(
                    !be.is_empty(),
                    "channel {} observed no events for {:?}", ch, scheduler
                );
                prop_assert!(
                    be == se,
                    "channel {} event stream diverged for {:?}", ch, scheduler
                );
                prop_assert!(
                    normalized_epochs(b) == normalized_epochs(s),
                    "channel {} epoch samples diverged for {:?}", ch, scheduler
                );
                prop_assert!(b.finished && s.finished);
            }
        }
    }

    /// In-situ oracle: step live two-channel systems under every
    /// scheduler and, at random intervals, have each controller rebuild
    /// its SWAR lanes from scratch and compare ready bitmaps, per-bank
    /// batch keys, and the fused min against the scalar
    /// `BankGates`/`bank_key` oracle over its *current* timing state.
    #[test]
    fn prop_swar_lanes_match_scalar_oracle(
        depth in prop_oneof![Just(32usize), Just(256usize)],
        w0 in 0usize..WORKLOADS.len(),
        w1 in 0usize..WORKLOADS.len(),
        stride in 13u64..97,
    ) {
        for scheduler in SCHEDULERS {
            let workloads = [WORKLOADS[w0], WORKLOADS[w1]];
            let cfg = config_for(2, depth, workloads.len());
            let rc = RunConfig {
                mem_ops_per_core: 200,
                ..RunConfig::quick()
            };
            let specs: Vec<_> =
                workloads.iter().map(|w| by_name(w).unwrap()).collect();
            let traces = traces_for(&specs, &cfg, &rc);
            let mut sys = System::with_sinks(
                cfg,
                scheduler,
                PbGrouping::paper(5),
                traces,
                vec![MemorySink::default(); 2],
                None,
            );
            // 40 probe points spaced `stride` steps apart reach deep
            // enough to see open rows, conflicts, refresh pressure and
            // write drains under every scheduler.
            for _ in 0..40 {
                for _ in 0..stride {
                    sys.step();
                }
                for mc in sys.controllers_mut() {
                    mc.debug_check_batch_vs_scalar();
                }
            }
        }
    }
}

/// Deterministic smoke (always runs, no sampling): the scalar path
/// behind `NUAT_NO_BATCH=1` must still reproduce the committed golden
/// fingerprints from `determinism_guard` — the escape hatch is the
/// reference implementation, not a second dialect.
#[test]
fn no_batch_goldens_match_determinism_guard() {
    // (scheduler, mc_cycles, total_read_latency, execution_cpu_cycles)
    // — the exact tuples locked in determinism_guard.rs.
    let goldens = [
        (SchedulerKind::Fcfs, 12713u64, 67650u64, 50821u64),
        (SchedulerKind::FrFcfsOpen, 12732, 67172, 50897),
        (SchedulerKind::FrFcfsClose, 13064, 68455, 52253),
        (SchedulerKind::Nuat, 12990, 67075, 51957),
    ];
    let rc = RunConfig::quick();
    for (kind, mc_cycles, total_read_latency, exec_cpu) in goldens {
        let cfg = SystemConfig::with_cores(1);
        let traces = traces_for(&[by_name("comm3").unwrap()], &cfg, &rc);
        let mut sys = System::new(cfg, kind, PbGrouping::paper(5), traces);
        for mc in sys.controllers_mut() {
            mc.set_batch_kernel(false);
        }
        let r = sys.run(rc.max_mc_cycles);
        assert!(r.completed, "{}: run must complete", r.scheduler);
        assert_eq!(r.mc_cycles, mc_cycles, "{}: mc_cycles", r.scheduler);
        assert_eq!(
            r.stats.total_read_latency, total_read_latency,
            "{}: total_read_latency",
            r.scheduler
        );
        assert_eq!(
            r.execution_cpu_cycles, exec_cpu,
            "{}: execution_cpu_cycles",
            r.scheduler
        );
        assert_eq!(r.stats.reads_completed, 985, "{}: reads", r.scheduler);
        assert_eq!(r.stats.writes_drained, 515, "{}: writes", r.scheduler);
    }
}

/// Deterministic A/B smoke for the same property (always runs): two
/// channels, every scheduler, both issue depths.
#[test]
fn batch_two_channel_goldens_match_scalar() {
    for scheduler in SCHEDULERS {
        for depth in [32usize, 256] {
            let workloads = ["ferret", "comm1"];
            let (batch, batch_sinks) = run_with(true, scheduler, 2, depth, &workloads, 600);
            let (scalar, scalar_sinks) = run_with(false, scheduler, 2, depth, &workloads, 600);
            assert!(batch.completed);
            assert_eq!(
                fingerprint(&batch),
                fingerprint(&scalar),
                "{scheduler:?} depth {depth}"
            );
            for (b, s) in batch_sinks.iter().zip(&scalar_sinks) {
                assert!(
                    observable_events(b) == observable_events(s),
                    "{scheduler:?} depth {depth} command/event stream"
                );
                assert!(
                    normalized_epochs(b) == normalized_epochs(s),
                    "{scheduler:?} depth {depth} epoch samples"
                );
            }
        }
    }
}
