//! Methodology-level integration tests: warmup stat resets and the
//! command-bus serialization invariant.

use nuat_circuit::PbGrouping;
use nuat_core::{MemoryController, RequestKind, SchedulerKind};
use nuat_sim::{run_single, RunConfig};
use nuat_types::SystemConfig;
use nuat_workloads::by_name;

#[test]
fn warmup_discards_cold_start_reads() {
    let spec = by_name("comm3").unwrap();
    let cold = RunConfig {
        mem_ops_per_core: 2000,
        ..RunConfig::quick()
    };
    let warm = RunConfig {
        warmup_reads: 300,
        ..cold
    };
    let r_cold = run_single(spec, SchedulerKind::Nuat, &cold);
    let r_warm = run_single(spec, SchedulerKind::Nuat, &warm);
    assert!(r_cold.completed && r_warm.completed);
    // The warm run counts ~300 fewer reads ...
    assert!(r_warm.stats.reads_completed < r_cold.stats.reads_completed);
    assert!(r_warm.stats.reads_completed >= r_cold.stats.reads_completed - 310);
    // ... while the simulated behaviour (execution time) is identical:
    // warmup only resets counters, never state.
    assert_eq!(r_warm.execution_cpu_cycles, r_cold.execution_cpu_cycles);
    assert_eq!(r_warm.mc_cycles, r_cold.mc_cycles);
}

#[test]
fn command_bus_issues_at_most_one_command_per_cycle() {
    let mut mc = MemoryController::new(SystemConfig::default(), SchedulerKind::Nuat);
    mc.enable_command_logging(100_000);
    // Saturate with conflicting traffic across all banks.
    let g = nuat_types::DramGeometry::default();
    for i in 0..48u32 {
        let addr = g
            .encode(
                nuat_types::DecodedAddr {
                    channel: nuat_types::Channel::new(0),
                    rank: nuat_types::Rank::new(0),
                    bank: nuat_types::Bank::new(i % 8),
                    row: nuat_types::Row::new(i * 37 % 8192),
                    col: nuat_types::Col::new(i % 16),
                },
                nuat_types::AddressMapping::OpenPageBaseline,
            )
            .unwrap();
        mc.enqueue(
            0,
            if i % 3 == 0 {
                RequestKind::Write
            } else {
                RequestKind::Read
            },
            addr,
        );
    }
    mc.run_for(5_000);
    let log = mc.device().command_log().expect("logging enabled");
    assert!(log.recorded() > 48, "traffic must have generated commands");
    let mut last = None;
    for e in log.entries() {
        if let Some(prev) = last {
            assert!(e.at > prev, "two commands share cycle {}", e.at);
        }
        last = Some(e.at);
    }
    // And the whole accepted stream replays cleanly through the
    // reference protocol checker.
    log.replay_validate(&nuat_types::DramTimings::default(), 8)
        .unwrap();
}

#[test]
fn logged_nuat_traffic_replays_through_the_reference_checker() {
    let spec = by_name("ferret").unwrap();
    let rc = RunConfig {
        mem_ops_per_core: 400,
        ..RunConfig::quick()
    };
    // Use the low-level controller so we can enable logging.
    let cfg = SystemConfig::with_cores(1);
    let mut mc = MemoryController::with_grouping(cfg, SchedulerKind::Nuat, PbGrouping::paper(5));
    mc.enable_command_logging(1_000_000);
    let trace = nuat_workloads::TraceGenerator::new(spec, cfg.dram.geometry, 3)
        .generate(rc.mem_ops_per_core);
    let mut next = 0usize;
    while next < trace.records().len() || !mc.is_idle() {
        while next < trace.records().len() {
            let r = trace.records()[next];
            let kind = match r.op {
                nuat_cpu::MemOp::Read => RequestKind::Read,
                nuat_cpu::MemOp::Write => RequestKind::Write,
            };
            if !mc.can_accept(kind) {
                break;
            }
            mc.enqueue(0, kind, r.addr);
            next += 1;
        }
        mc.tick();
        mc.take_completions();
        assert!(mc.now().raw() < 10_000_000, "must terminate");
    }
    let log = mc.device().command_log().unwrap();
    assert!(!log.truncated());
    log.replay_validate(&nuat_types::DramTimings::default(), 8)
        .unwrap();
}
