//! Property test for channel-parallel execution: a sharded run
//! (`NUAT_CHANNEL_JOBS`-style worker-per-channel mode, forced via
//! `System::set_channel_workers`) must be byte-identical to the
//! sequential loop — same stats fingerprint, same per-channel command
//! stream, same per-channel sink contents — for every scheduler, any
//! channel/worker count, and any thread schedule.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_obs::MemorySink;
use nuat_sim::{traces_for, RunConfig, SimResult, System};
use nuat_types::{DramGeometry, SystemConfig};
use nuat_workloads::by_name;
use proptest::prelude::*;

const WORKLOADS: [&str; 6] = ["black", "face", "ferret", "comm1", "libq", "mummer"];
const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Fcfs,
    SchedulerKind::FrFcfsOpen,
    SchedulerKind::FrFcfsClose,
    SchedulerKind::Nuat,
];

/// Every scalar a run produces, bit-exact (mirrors the determinism
/// guard's fingerprint).
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &SimResult,
) -> (
    u64,
    u64,
    u64,
    u64,
    u64,
    nuat_dram::DeviceStats,
    u64,
    u64,
    Vec<u64>,
) {
    (
        r.mc_cycles,
        r.execution_cpu_cycles,
        r.stats.total_read_latency,
        r.stats.reads_completed,
        r.stats.writes_drained,
        r.device,
        r.powerdown_cycles,
        r.energy_pj.to_bits(),
        r.core_finish_cpu_cycles.clone(),
    )
}

/// One instrumented multi-channel run with a forced worker count
/// (`1` = the sequential reference loop).
fn run_with(
    workers: usize,
    scheduler: SchedulerKind,
    channels: u64,
    workloads: &[&str],
    mem_ops: usize,
) -> (SimResult, Vec<MemorySink>) {
    let mut cfg = SystemConfig::with_cores(workloads.len());
    cfg.dram.geometry = DramGeometry {
        channels,
        ..DramGeometry::default()
    };
    let rc = RunConfig {
        mem_ops_per_core: mem_ops,
        ..RunConfig::quick()
    };
    let specs: Vec<_> = workloads.iter().map(|w| by_name(w).unwrap()).collect();
    let traces = traces_for(&specs, &cfg, &rc);
    let mut sys = System::with_sinks(
        cfg,
        scheduler,
        PbGrouping::paper(5),
        traces,
        vec![MemorySink::default(); channels as usize],
        None,
    );
    sys.set_channel_workers(workers);
    sys.run_traced(rc.max_mc_cycles, 0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Sequential vs sharded, all four schedulers per sampled
    /// configuration: fingerprints, per-channel event streams (which
    /// include every DRAM command in issue order — the command log) and
    /// epoch samples must match exactly.
    #[test]
    fn channel_parallel_run_is_byte_identical_to_sequential(
        channels in prop_oneof![Just(2u64), Just(4u64)],
        workers in 2usize..=4,
        w0 in 0usize..WORKLOADS.len(),
        w1 in 0usize..WORKLOADS.len(),
        mem_ops in 150usize..400,
    ) {
        let workloads = [WORKLOADS[w0], WORKLOADS[w1]];
        for scheduler in SCHEDULERS {
            let (seq, seq_sinks) = run_with(1, scheduler, channels, &workloads, mem_ops);
            let (par, par_sinks) = run_with(workers, scheduler, channels, &workloads, mem_ops);
            prop_assert!(seq.completed, "{:?} sequential run must finish", scheduler);
            prop_assert_eq!(
                fingerprint(&seq),
                fingerprint(&par),
                "fingerprint diverged for {:?} ({} channels, {} workers)",
                scheduler, channels, workers
            );
            prop_assert_eq!(seq_sinks.len(), par_sinks.len());
            for (ch, (s, p)) in seq_sinks.iter().zip(&par_sinks).enumerate() {
                prop_assert_eq!(
                    s.events.len(), p.events.len(),
                    "channel {} event count diverged for {:?}", ch, scheduler
                );
                prop_assert!(
                    s.events == p.events,
                    "channel {} event stream diverged for {:?}", ch, scheduler
                );
                prop_assert!(
                    s.epochs == p.epochs,
                    "channel {} epoch samples diverged for {:?}", ch, scheduler
                );
                prop_assert!(s.finished && p.finished);
            }
        }
    }
}

/// Deterministic smoke for the same property (always runs, no sampling):
/// four channels, four workers, two cores, every scheduler.
#[test]
fn sharded_four_channel_goldens_match_sequential() {
    for scheduler in SCHEDULERS {
        let workloads = ["ferret", "comm1"];
        let (seq, seq_sinks) = run_with(1, scheduler, 4, &workloads, 600);
        let (par, par_sinks) = run_with(4, scheduler, 4, &workloads, 600);
        assert!(seq.completed);
        assert_eq!(fingerprint(&seq), fingerprint(&par), "{scheduler:?}");
        for (s, p) in seq_sinks.iter().zip(&par_sinks) {
            assert!(s.events == p.events, "{scheduler:?} command/event stream");
        }
    }
}
