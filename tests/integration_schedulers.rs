//! Scheduler-level integration tests: the paper's structural claims
//! about how NUAT relates to its baselines.

use nuat_core::{NuatWeights, SchedulerKind};
use nuat_sim::{run_single, RunConfig};
use nuat_workloads::{by_name, table2};

fn rc(ops: usize) -> RunConfig {
    RunConfig {
        mem_ops_per_core: ops,
        ..RunConfig::quick()
    }
}

#[test]
fn nuat_with_frfcfs_weights_matches_frfcfs_closely() {
    // Paper §8: "if only Element 1 and Element 2 [and 3] are considered,
    // it will be the same as FR-FCFS". With w4 = w5 = 0 and PPM pinned
    // open, NUAT's scoring reproduces FR-FCFS(open)'s choices up to
    // tie-breaks; measured latency must agree within a few percent.
    for name in ["comm3", "ferret", "libq"] {
        let spec = by_name(name).unwrap();
        let frf = run_single(spec, SchedulerKind::FrFcfsOpen, &rc(1200));
        let nuat_frf = run_single(
            spec,
            SchedulerKind::NuatWithWeights(NuatWeights::frfcfs()),
            &rc(1200),
        );
        let a = frf.avg_read_latency();
        // The reduced-timing ACTs still differ (scoring identical, but
        // NUAT promises per-PB timings), so allow the NUAT variant to be
        // faster — never slower by more than a whisker.
        let b = nuat_frf.avg_read_latency();
        assert!(
            b <= a * 1.08,
            "{name}: NUAT(frfcfs weights) {b:.1} must not lose to FR-FCFS {a:.1}"
        );
    }
}

#[test]
fn frfcfs_beats_fcfs_in_aggregate() {
    // Our FCFS is work-conserving (it picks the oldest *issuable*
    // command), so on low-locality workloads it ties FR-FCFS; the
    // hit-first advantage shows in aggregate across localities.
    let mut fcfs_total = 0.0;
    let mut frf_total = 0.0;
    for name in ["comm1", "libq", "comm3"] {
        let spec = by_name(name).unwrap();
        fcfs_total += run_single(spec, SchedulerKind::Fcfs, &rc(1200)).avg_read_latency();
        frf_total += run_single(spec, SchedulerKind::FrFcfsOpen, &rc(1200)).avg_read_latency();
    }
    assert!(
        frf_total <= fcfs_total * 1.02,
        "FR-FCFS {frf_total:.1} must not lose to FCFS {fcfs_total:.1} in aggregate"
    );
}

#[test]
fn page_mode_tradeoff_depends_on_locality() {
    // High locality with spread-out arrivals (leslie): open wins big —
    // close cannot preserve reuse that is not yet queued. Low locality:
    // close is competitive (activations hide behind the auto-precharge).
    let leslie = by_name("leslie").unwrap();
    let open = run_single(leslie, SchedulerKind::FrFcfsOpen, &rc(2400));
    let close = run_single(leslie, SchedulerKind::FrFcfsClose, &rc(2400));
    assert!(open.avg_read_latency() < close.avg_read_latency());
    assert!(open.stats.read_hit_rate() > close.stats.read_hit_rate() + 0.2);

    let ferret = by_name("ferret").unwrap();
    let open = run_single(ferret, SchedulerKind::FrFcfsOpen, &rc(1200));
    let close = run_single(ferret, SchedulerKind::FrFcfsClose, &rc(1200));
    let ratio = close.avg_read_latency() / open.avg_read_latency();
    assert!(
        ratio < 1.15,
        "close page must be competitive on ferret, ratio {ratio:.2}"
    );
}

#[test]
fn nuat_never_loses_badly_anywhere() {
    // The paper's worst regressions are ~4 % (Leslie). Allow a modest
    // guard band, but NUAT must never blow up on any workload.
    for spec in table2() {
        let open = run_single(spec, SchedulerKind::FrFcfsOpen, &rc(700));
        let nuat = run_single(spec, SchedulerKind::Nuat, &rc(700));
        let ratio = nuat.avg_read_latency() / open.avg_read_latency();
        assert!(
            ratio < 1.12,
            "{}: NUAT {:.1} vs open {:.1} (ratio {ratio:.2})",
            spec.name,
            nuat.avg_read_latency(),
            open.avg_read_latency()
        );
    }
}

#[test]
fn boundary_element_does_not_hurt() {
    // Ablation: zeroing w5 should not make NUAT dramatically better —
    // i.e. the boundary element is at worst neutral on average.
    let mut with_total = 0.0;
    let mut without_total = 0.0;
    for name in ["comm1", "ferret", "mummer"] {
        let spec = by_name(name).unwrap();
        let with_w5 = run_single(spec, SchedulerKind::Nuat, &rc(1000));
        let without_w5 = run_single(
            spec,
            SchedulerKind::NuatWithWeights(NuatWeights {
                w5: 0.0,
                ..NuatWeights::default()
            }),
            &rc(1000),
        );
        with_total += with_w5.avg_read_latency();
        without_total += without_w5.avg_read_latency();
    }
    assert!(
        with_total <= without_total * 1.05,
        "boundary element must not cost more than 5% in aggregate: {with_total:.1} vs {without_total:.1}"
    );
}

#[test]
fn write_floods_engage_drain_mode_without_starving_reads() {
    // stream has 45 % writes — heavy write pressure.
    let spec = by_name("stream").unwrap();
    let r = run_single(spec, SchedulerKind::Nuat, &rc(1500));
    assert!(r.completed, "write-heavy workload must finish");
    assert!(r.stats.writes_drained > 0);
    assert!(r.stats.reads_completed > 0);
}
