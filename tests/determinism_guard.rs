//! Determinism guards: lock the simulator's exact outputs so hot-path
//! optimizations (scratch buffers, single-pass scoring, idle
//! fast-forward, parallel execution) cannot silently change scheduling
//! decisions. Every value here was recorded from the straightforward
//! reference implementation; a mismatch means an "optimization" altered
//! simulated behaviour, not just speed.

use nuat_core::{MemoryController, RequestKind, SchedulerKind};
use nuat_sim::{parallel_map, run_single, RunConfig};
use nuat_types::{Rank, SystemConfig};
use nuat_workloads::by_name;

/// Golden single-core results on `comm3` at `RunConfig::quick()`,
/// recorded before the zero-allocation/fast-forward rework. The
/// optimized controller must reproduce them exactly — decision
/// identity, not statistical similarity.
#[test]
fn golden_single_core_results_are_locked() {
    let goldens = [
        (SchedulerKind::Fcfs, 12713u64, 67650u64, 50821u64),
        (SchedulerKind::FrFcfsOpen, 12732, 67172, 50897),
        (SchedulerKind::FrFcfsClose, 13064, 68455, 52253),
        (SchedulerKind::Nuat, 12990, 67075, 51957),
    ];
    let rc = RunConfig::quick();
    let spec = by_name("comm3").unwrap();
    for (kind, mc_cycles, total_read_latency, exec_cpu) in goldens {
        let r = run_single(spec, kind, &rc);
        assert!(r.completed, "{}: run must complete", r.scheduler);
        assert_eq!(r.mc_cycles, mc_cycles, "{}: mc_cycles drifted", r.scheduler);
        assert_eq!(
            r.stats.total_read_latency, total_read_latency,
            "{}: total_read_latency drifted",
            r.scheduler
        );
        assert_eq!(
            r.execution_cpu_cycles, exec_cpu,
            "{}: execution_cpu_cycles drifted",
            r.scheduler
        );
        assert_eq!(r.stats.reads_completed, 985, "{}: reads drifted", r.scheduler);
        assert_eq!(r.stats.writes_drained, 515, "{}: writes drifted", r.scheduler);
    }
}

/// The parallel campaign executor must be a pure reordering of work:
/// results come back in input order and are bit-identical to a
/// sequential loop, even when forced onto multiple workers.
#[test]
fn parallel_runs_match_sequential_runs_exactly() {
    // Force real threading even on single-CPU machines; the variable is
    // only read by this binary's parallel_map calls.
    std::env::set_var("NUAT_JOBS", "3");
    let rc = RunConfig { mem_ops_per_core: 600, ..RunConfig::quick() };
    let cells: Vec<(&str, SchedulerKind)> = ["comm3", "ferret", "libq"]
        .into_iter()
        .flat_map(|w| {
            [SchedulerKind::Nuat, SchedulerKind::FrFcfsOpen]
                .into_iter()
                .map(move |k| (w, k))
        })
        .collect();
    let fingerprint = |name: &str, kind: SchedulerKind| {
        let r = run_single(by_name(name).unwrap(), kind, &rc);
        (r.mc_cycles, r.stats.total_read_latency, r.execution_cpu_cycles)
    };
    let par = parallel_map(&cells, |&(w, k)| fingerprint(w, k));
    let seq: Vec<_> = cells.iter().map(|&(w, k)| fingerprint(w, k)).collect();
    std::env::remove_var("NUAT_JOBS");
    assert_eq!(par, seq);
}

fn loaded_controller(powerdown_after_idle: u64) -> MemoryController {
    let mut cfg = SystemConfig::default();
    cfg.controller.powerdown_after_idle = powerdown_after_idle;
    let mut mc = MemoryController::new(cfg, SchedulerKind::Nuat);
    let g = nuat_types::DramGeometry::default();
    for i in 0..16u32 {
        let addr = g
            .encode(
                nuat_types::DecodedAddr {
                    channel: nuat_types::Channel::new(0),
                    rank: Rank::new(0),
                    bank: nuat_types::Bank::new(i % 8),
                    row: nuat_types::Row::new(100 + i / 4),
                    col: nuat_types::Col::new(i % 64),
                },
                nuat_types::AddressMapping::OpenPageBaseline,
            )
            .unwrap();
        mc.enqueue(0, if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read }, addr);
    }
    mc
}

/// `run_for`'s idle fast-forward must be invisible: a burst of work,
/// then a long idle stretch crossing several refresh intervals and the
/// power-down threshold, must leave the controller in exactly the state
/// a cycle-by-cycle loop produces.
#[test]
fn fast_forward_is_cycle_accurate() {
    // Refresh batches are due every 50k cycles (tREFI 6250 x 8 rows);
    // cover two of them plus the initial burst and power-down entry.
    const CYCLES: u64 = 120_000;
    for powerdown in [0u64, 64] {
        let mut fast = loaded_controller(powerdown);
        let mut slow = loaded_controller(powerdown);
        fast.run_for(CYCLES);
        for _ in 0..CYCLES {
            slow.tick();
        }
        assert_eq!(fast.now(), slow.now(), "powerdown={powerdown}: clock diverged");
        assert_eq!(fast.stats(), slow.stats(), "powerdown={powerdown}: stats diverged");
        assert_eq!(
            fast.device().stats(),
            slow.device().stats(),
            "powerdown={powerdown}: device stats diverged"
        );
        assert_eq!(
            fast.device().total_powerdown_cycles(),
            slow.device().total_powerdown_cycles(),
            "powerdown={powerdown}: power-down accounting diverged"
        );
        assert_eq!(
            fast.refresh_engine(Rank::new(0)).batches_done(),
            slow.refresh_engine(Rank::new(0)).batches_done(),
            "powerdown={powerdown}: refresh accounting diverged"
        );
        // The idle stretch is long enough that the guards above actually
        // exercised refresh and power-down, not just an empty loop.
        assert!(fast.refresh_engine(Rank::new(0)).batches_done() > 0);
        if powerdown > 0 {
            assert!(fast.device().total_powerdown_cycles() > 0);
        }
    }
}
