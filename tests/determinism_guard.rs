//! Determinism guards: lock the simulator's exact outputs so hot-path
//! optimizations (scratch buffers, single-pass scoring, idle
//! fast-forward, parallel execution) cannot silently change scheduling
//! decisions. Every value here was recorded from the straightforward
//! reference implementation; a mismatch means an "optimization" altered
//! simulated behaviour, not just speed.

use nuat_circuit::PbGrouping;
use nuat_core::{MemoryController, RequestKind, SchedulerKind};
use nuat_sim::{parallel_map, run_single, traces_for, RunConfig, SimResult, System};
use nuat_types::{Rank, SystemConfig};
use nuat_workloads::{by_name, Suite, WorkloadSpec};

/// Golden single-core results on `comm3` at `RunConfig::quick()`,
/// recorded before the zero-allocation/fast-forward rework. The
/// optimized controller must reproduce them exactly — decision
/// identity, not statistical similarity.
#[test]
fn golden_single_core_results_are_locked() {
    let goldens = [
        (SchedulerKind::Fcfs, 12713u64, 67650u64, 50821u64),
        (SchedulerKind::FrFcfsOpen, 12732, 67172, 50897),
        (SchedulerKind::FrFcfsClose, 13064, 68455, 52253),
        (SchedulerKind::Nuat, 12990, 67075, 51957),
    ];
    let rc = RunConfig::quick();
    let spec = by_name("comm3").unwrap();
    for (kind, mc_cycles, total_read_latency, exec_cpu) in goldens {
        let r = run_single(spec, kind, &rc);
        assert!(r.completed, "{}: run must complete", r.scheduler);
        assert_eq!(r.mc_cycles, mc_cycles, "{}: mc_cycles drifted", r.scheduler);
        assert_eq!(
            r.stats.total_read_latency, total_read_latency,
            "{}: total_read_latency drifted",
            r.scheduler
        );
        assert_eq!(
            r.execution_cpu_cycles, exec_cpu,
            "{}: execution_cpu_cycles drifted",
            r.scheduler
        );
        assert_eq!(
            r.stats.reads_completed, 985,
            "{}: reads drifted",
            r.scheduler
        );
        assert_eq!(
            r.stats.writes_drained, 515,
            "{}: writes drifted",
            r.scheduler
        );
    }
}

/// The parallel campaign executor must be a pure reordering of work:
/// results come back in input order and are bit-identical to a
/// sequential loop, even when forced onto multiple workers.
#[test]
fn parallel_runs_match_sequential_runs_exactly() {
    // Force real threading even on single-CPU machines; the variable is
    // only read by this binary's parallel_map calls.
    std::env::set_var("NUAT_JOBS", "3");
    let rc = RunConfig {
        mem_ops_per_core: 600,
        ..RunConfig::quick()
    };
    let cells: Vec<(&str, SchedulerKind)> = ["comm3", "ferret", "libq"]
        .into_iter()
        .flat_map(|w| {
            [SchedulerKind::Nuat, SchedulerKind::FrFcfsOpen]
                .into_iter()
                .map(move |k| (w, k))
        })
        .collect();
    let fingerprint = |name: &str, kind: SchedulerKind| {
        let r = run_single(by_name(name).unwrap(), kind, &rc);
        (
            r.mc_cycles,
            r.stats.total_read_latency,
            r.execution_cpu_cycles,
        )
    };
    let par = parallel_map(&cells, |&(w, k)| fingerprint(w, k));
    let seq: Vec<_> = cells.iter().map(|&(w, k)| fingerprint(w, k)).collect();
    std::env::remove_var("NUAT_JOBS");
    assert_eq!(par, seq);
}

/// Full-result fingerprint used by the skip-mode A/B tests: every field
/// that could betray a scheduling or accounting divergence.
fn full_fingerprint(r: &SimResult) -> (u64, u64, u64, u64, u64, nuat_dram::DeviceStats, u64, u64) {
    (
        r.mc_cycles,
        r.execution_cpu_cycles,
        r.stats.total_read_latency,
        r.stats.reads_completed,
        r.stats.writes_drained,
        r.device,
        r.powerdown_cycles,
        // Bit-exact: energy must not drift even in the last ulp.
        r.energy_pj.to_bits(),
    )
}

/// Recorded goldens for [`powerdown_study_golden_fingerprint`]:
/// `(mc_cycles, total_read_latency, powerdown_cycles)` on the sparse
/// workload at `RunConfig::quick()`, NUAT scheduler.
const GOLDEN_PD0: (u64, u64, u64) = (242_662, 38_639, 0);
const GOLDEN_PD64: (u64, u64, u64) = (242_244, 40_306, 196_608);

fn run_comm3(kind: SchedulerKind, skip: bool) -> SimResult {
    let rc = RunConfig::quick();
    let cfg = SystemConfig::with_cores(1);
    let traces = traces_for(&[by_name("comm3").unwrap()], &cfg, &rc);
    let mut sys = System::new(cfg, kind, PbGrouping::paper(5), traces);
    if !skip {
        for mc in sys.controllers_mut() {
            mc.set_cycle_skip(false);
        }
    }
    sys.run(rc.max_mc_cycles)
}

/// The event-driven busy-period skip must be invisible: for every
/// scheduler, a run with skipping enabled (the default) and a run
/// forced onto the legacy strictly-per-tick loop must produce
/// byte-identical results — including device command counts, energy
/// and power-down accounting, not just the headline latency numbers.
#[test]
fn busy_skip_modes_are_byte_identical_for_every_scheduler() {
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfsOpen,
        SchedulerKind::FrFcfsClose,
        SchedulerKind::Nuat,
    ] {
        let fast = run_comm3(kind, true);
        let slow = run_comm3(kind, false);
        assert!(fast.completed && slow.completed);
        assert_eq!(
            full_fingerprint(&fast),
            full_fingerprint(&slow),
            "{}: skip vs no-skip fingerprints diverged",
            fast.scheduler
        );
    }
}

/// The sparse workload from `powerdown_study`: long idle stretches, the
/// regime where busy-period skipping and CKE power management interact
/// hardest (urgency transitions, idle counting, wake-ups).
fn sparse() -> WorkloadSpec {
    WorkloadSpec {
        name: "sparse",
        suite: Suite::Spec,
        mpki: 0.8,
        row_locality: 0.5,
        read_fraction: 0.7,
        streams: 2,
        footprint_rows: 64,
        burst_len: 4,
        gap_in_burst: 10,
        phased: false,
    }
}

/// Golden fingerprint for the `powerdown_study` configuration, plus
/// skip-mode identity on the same runs. Values recorded from the
/// strictly-per-tick loop.
#[test]
fn powerdown_study_golden_fingerprint() {
    // (powerdown_after_idle, mc_cycles, total_read_latency, powerdown_cycles)
    let goldens = [(0u64, GOLDEN_PD0), (64, GOLDEN_PD64)];
    for (idle, golden) in goldens {
        let run = |skip: bool| {
            let rc = RunConfig::quick();
            let mut cfg = SystemConfig::with_cores(1);
            cfg.controller.powerdown_after_idle = idle;
            let traces = traces_for(&[sparse()], &cfg, &rc);
            let mut sys = System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces);
            if !skip {
                for mc in sys.controllers_mut() {
                    mc.set_cycle_skip(false);
                }
            }
            sys.run(rc.max_mc_cycles)
        };
        let fast = run(true);
        let slow = run(false);
        assert!(fast.completed && slow.completed);
        assert_eq!(
            full_fingerprint(&fast),
            full_fingerprint(&slow),
            "powerdown={idle}: skip vs no-skip fingerprints diverged"
        );
        assert_eq!(
            (
                fast.mc_cycles,
                fast.stats.total_read_latency,
                fast.powerdown_cycles
            ),
            golden,
            "powerdown={idle}: golden fingerprint drifted"
        );
        if idle > 0 {
            assert!(
                fast.powerdown_cycles > 0,
                "sparse run must enter power-down"
            );
        }
    }
}

/// Attaching a trace sink must be pure observation: a run with the
/// default [`nuat_obs::NullSink`] and a run streaming full JSONL events
/// plus epoch samples must produce byte-identical results (the golden
/// fingerprints above stay valid with any sink attached).
#[test]
fn attached_sink_runs_are_byte_identical_to_null_sink_runs() {
    let rc = RunConfig::quick();
    let spec = by_name("comm3").unwrap();
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfsOpen,
        SchedulerKind::FrFcfsClose,
        SchedulerKind::Nuat,
    ] {
        let plain = run_single(spec, kind, &rc);
        let (traced, mut sinks) = nuat_sim::run_mix_traced(
            &[spec],
            kind,
            PbGrouping::paper(5),
            &rc,
            vec![nuat_obs::JsonlSink::new(Vec::new())],
            Some(1_000),
        );
        assert_eq!(
            full_fingerprint(&plain),
            full_fingerprint(&traced),
            "{}: attaching a JSONL sink changed the simulation",
            plain.scheduler
        );
        // And the sink actually observed the run — this test must not
        // pass vacuously because instrumentation was compiled out.
        let text = String::from_utf8(sinks.remove(0).into_inner()).unwrap();
        assert!(text.lines().count() > 1_000, "{kind:?}: trace looks empty");
        assert!(text.contains("\"type\":\"cmd\""));
        assert!(text.contains("\"type\":\"epoch\""));
    }
}

/// Attaching a metrics recorder must likewise be pure observation: for
/// every scheduler, a run with the default [`nuat_obs::NullMetrics`]
/// and a run carrying a full [`nuat_obs::MetricsRecorder`] (counters,
/// histograms, sampled timeline) must produce byte-identical results.
#[test]
fn attached_metrics_runs_are_byte_identical_to_null_metrics_runs() {
    use nuat_obs::Counter;
    let rc = RunConfig::quick();
    let spec = by_name("comm3").unwrap();
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfsOpen,
        SchedulerKind::FrFcfsClose,
        SchedulerKind::Nuat,
    ] {
        let plain = run_single(spec, kind, &rc);
        let (instrumented, _sinks, recs) = nuat_sim::run_mix_instrumented(
            &[spec],
            kind,
            PbGrouping::paper(5),
            &rc,
            vec![nuat_obs::NullSink],
            vec![nuat_obs::MetricsRecorder::with_sample_interval(1_000)],
            None,
        );
        assert_eq!(
            full_fingerprint(&plain),
            full_fingerprint(&instrumented),
            "{}: attaching a metrics recorder changed the simulation",
            plain.scheduler
        );
        // Non-vacuousness: the recorder really rode the run, and its
        // ledger reconciles exactly with the controller statistics.
        let rec = &recs[0];
        assert!(rec.counter(Counter::TickCycles) > 0, "{kind:?}: no ticks");
        assert!(!rec.timeline().is_empty(), "{kind:?}: no timeline samples");
        assert_eq!(
            rec.counter(Counter::ReadsCompleted),
            instrumented.stats.reads_completed,
            "{kind:?}: reads ledger"
        );
        assert_eq!(
            rec.counter(Counter::WritesDrained),
            instrumented.stats.writes_drained,
            "{kind:?}: writes ledger"
        );
        assert_eq!(
            rec.counter(Counter::SkipBusyCycles),
            instrumented.cycles_skipped,
            "{kind:?}: skip ledger"
        );
        assert_eq!(
            rec.counter(Counter::CmdActivate),
            instrumented.stats.acts_for_reads + instrumented.stats.acts_for_writes,
            "{kind:?}: activate ledger"
        );
    }
}

fn loaded_controller(powerdown_after_idle: u64) -> MemoryController {
    let mut cfg = SystemConfig::default();
    cfg.controller.powerdown_after_idle = powerdown_after_idle;
    let mut mc = MemoryController::new(cfg, SchedulerKind::Nuat);
    let g = nuat_types::DramGeometry::default();
    for i in 0..16u32 {
        let addr = g
            .encode(
                nuat_types::DecodedAddr {
                    channel: nuat_types::Channel::new(0),
                    rank: Rank::new(0),
                    bank: nuat_types::Bank::new(i % 8),
                    row: nuat_types::Row::new(100 + i / 4),
                    col: nuat_types::Col::new(i % 64),
                },
                nuat_types::AddressMapping::OpenPageBaseline,
            )
            .unwrap();
        mc.enqueue(
            0,
            if i % 3 == 0 {
                RequestKind::Write
            } else {
                RequestKind::Read
            },
            addr,
        );
    }
    mc
}

/// `run_for`'s idle fast-forward must be invisible: a burst of work,
/// then a long idle stretch crossing several refresh intervals and the
/// power-down threshold, must leave the controller in exactly the state
/// a cycle-by-cycle loop produces.
#[test]
fn fast_forward_is_cycle_accurate() {
    // Refresh batches are due every 50k cycles (tREFI 6250 x 8 rows);
    // cover two of them plus the initial burst and power-down entry.
    const CYCLES: u64 = 120_000;
    for powerdown in [0u64, 64] {
        let mut fast = loaded_controller(powerdown);
        let mut slow = loaded_controller(powerdown);
        // Force the reference controller onto the legacy per-tick loop
        // so this really is event-driven-vs-reference, not fast-vs-fast.
        slow.set_cycle_skip(false);
        fast.run_for(CYCLES);
        for _ in 0..CYCLES {
            slow.tick();
        }
        assert!(
            fast.cycles_skipped() > 0,
            "powerdown={powerdown}: busy-period skip never engaged"
        );
        assert_eq!(
            slow.cycles_skipped(),
            0,
            "powerdown={powerdown}: disabled controller must not skip"
        );
        assert_eq!(
            fast.now(),
            slow.now(),
            "powerdown={powerdown}: clock diverged"
        );
        assert_eq!(
            fast.stats(),
            slow.stats(),
            "powerdown={powerdown}: stats diverged"
        );
        assert_eq!(
            fast.device().stats(),
            slow.device().stats(),
            "powerdown={powerdown}: device stats diverged"
        );
        assert_eq!(
            fast.device().total_powerdown_cycles(),
            slow.device().total_powerdown_cycles(),
            "powerdown={powerdown}: power-down accounting diverged"
        );
        assert_eq!(
            fast.refresh_engine(Rank::new(0)).batches_done(),
            slow.refresh_engine(Rank::new(0)).batches_done(),
            "powerdown={powerdown}: refresh accounting diverged"
        );
        // The idle stretch is long enough that the guards above actually
        // exercised refresh and power-down, not just an empty loop.
        assert!(fast.refresh_engine(Rank::new(0)).batches_done() > 0);
        if powerdown > 0 {
            assert!(fast.device().total_powerdown_cycles() > 0);
        }
    }
}
