//! Property test for the unified event calendar: a discrete-event run
//! (the default — calendar-driven cores, wake caching and busy-period
//! skip) must be byte-identical to the legacy strictly tick-by-tick
//! loop (`NUAT_NO_DES=1` semantics, forced in-process via
//! [`System::set_des`] plus `MemoryController::set_cycle_skip(false)`)
//! — same stats fingerprint, same per-channel command/event stream,
//! same epoch samples — for every scheduler, random workload pairs,
//! queue depths {32, 256} and channel counts {1, 4}.
//!
//! As with the wheel-vs-scan property, the one legitimate divergence is
//! the *skip structure*: the calendar jumps straight to the next event
//! while the tick loop burns a cycle per iteration, so the split
//! between "ticked" and "bulk-advanced" quiet cycles differs while
//! every observable outcome — commands, their cycles, completion times,
//! energy, epoch-sampled counters — stays bit-exact across
//! arbitrary-length jumps. Fingerprints therefore exclude
//! `cycles_skipped`, epoch samples are compared with that single field
//! normalized to zero, and `QuietSpan` events (the per-span encoding of
//! the same split) are filtered from the compared event streams.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_obs::{EpochSample, MemorySink, TraceEvent};
use nuat_sim::{traces_for, RunConfig, SimResult, System};
use nuat_types::{DramGeometry, SystemConfig};
use nuat_workloads::by_name;
use proptest::prelude::*;

const WORKLOADS: [&str; 6] = ["black", "face", "ferret", "comm1", "libq", "mummer"];
const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Fcfs,
    SchedulerKind::FrFcfsOpen,
    SchedulerKind::FrFcfsClose,
    SchedulerKind::Nuat,
];
const DEPTHS: [usize; 2] = [32, 256];
const CHANNELS: [u64; 2] = [1, 4];

/// Every scalar a run produces, bit-exact (`cycles_skipped`
/// deliberately excluded — see the module docs).
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &SimResult,
) -> (
    u64,
    u64,
    u64,
    u64,
    u64,
    nuat_dram::DeviceStats,
    u64,
    u64,
    Vec<u64>,
) {
    (
        r.mc_cycles,
        r.execution_cpu_cycles,
        r.stats.total_read_latency,
        r.stats.reads_completed,
        r.stats.writes_drained,
        r.device,
        r.powerdown_cycles,
        r.energy_pj.to_bits(),
        r.core_finish_cpu_cycles.clone(),
    )
}

/// Epoch samples with the skip-split normalized out.
fn normalized_epochs(sink: &MemorySink) -> Vec<EpochSample> {
    sink.epochs
        .iter()
        .map(|e| EpochSample {
            cycles_skipped: 0,
            ..e.clone()
        })
        .collect()
}

/// The observable event stream: everything except `QuietSpan` (the
/// per-span encoding of the skip split — see the module docs).
fn observable_events(sink: &MemorySink) -> Vec<TraceEvent> {
    sink.events
        .iter()
        .filter(|e| !matches!(e, TraceEvent::QuietSpan { .. }))
        .copied()
        .collect()
}

/// One instrumented run. `des = true` is the stock configuration;
/// `des = false` forces the whole stack onto the reference loop: the
/// system steps every CPU cycle (no wake calendar) and every channel
/// controller ticks every MC cycle (no busy-period skip).
fn run_with(
    des: bool,
    scheduler: SchedulerKind,
    channels: u64,
    depth: usize,
    workloads: &[&str],
    mem_ops: usize,
) -> (SimResult, Vec<MemorySink>) {
    let mut cfg = SystemConfig::with_cores(workloads.len());
    cfg.dram.geometry = DramGeometry {
        channels,
        ..DramGeometry::default()
    };
    cfg.controller.read_queue_capacity = depth;
    cfg.controller.write_queue_capacity = depth;
    cfg.controller.write_high_watermark = depth * 40 / 64;
    cfg.controller.write_low_watermark = depth * 20 / 64;
    let rc = RunConfig {
        mem_ops_per_core: mem_ops,
        ..RunConfig::quick()
    };
    let specs: Vec<_> = workloads.iter().map(|w| by_name(w).unwrap()).collect();
    let traces = traces_for(&specs, &cfg, &rc);
    let mut sys = System::with_sinks(
        cfg,
        scheduler,
        PbGrouping::paper(5),
        traces,
        vec![MemorySink::default(); channels as usize],
        None,
    );
    if !des {
        sys.set_des(false);
        for mc in sys.controllers_mut() {
            mc.set_cycle_skip(false);
        }
    }
    sys.run_traced(rc.max_mc_cycles, 0)
}

fn assert_des_equals_tick(
    scheduler: SchedulerKind,
    channels: u64,
    depth: usize,
    workloads: &[&str],
    mem_ops: usize,
) {
    let (des, des_sinks) = run_with(true, scheduler, channels, depth, workloads, mem_ops);
    let (tick, tick_sinks) = run_with(false, scheduler, channels, depth, workloads, mem_ops);
    assert!(des.completed, "{scheduler:?}: DES run must finish");
    assert_eq!(
        fingerprint(&des),
        fingerprint(&tick),
        "fingerprint diverged for {scheduler:?} ({channels} channels, depth {depth})"
    );
    assert_eq!(des_sinks.len(), tick_sinks.len());
    for (ch, (d, t)) in des_sinks.iter().zip(&tick_sinks).enumerate() {
        let (de, te) = (observable_events(d), observable_events(t));
        assert!(
            !de.is_empty(),
            "channel {ch} observed no events for {scheduler:?}"
        );
        assert!(
            de == te,
            "channel {ch} event stream diverged for {scheduler:?} \
             ({channels} channels, depth {depth})"
        );
        assert!(
            normalized_epochs(d) == normalized_epochs(t),
            "channel {ch} epoch samples diverged for {scheduler:?} \
             ({channels} channels, depth {depth})"
        );
        assert!(d.finished && t.finished);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    /// DES vs tick-by-tick over random workload mixes: for each sampled
    /// mix, every scheduler × depth {32, 256} × channels {1, 4} cell
    /// must match exactly — fingerprints, per-channel event streams
    /// (every DRAM command in issue order) and normalized epoch
    /// samples.
    #[test]
    fn prop_des_equals_tick(
        w0 in 0usize..WORKLOADS.len(),
        w1 in 0usize..WORKLOADS.len(),
        mem_ops in 150usize..350,
    ) {
        let workloads = [WORKLOADS[w0], WORKLOADS[w1]];
        for scheduler in SCHEDULERS {
            for depth in DEPTHS {
                for channels in CHANNELS {
                    assert_des_equals_tick(scheduler, channels, depth, &workloads, mem_ops);
                }
            }
        }
    }
}

/// Deterministic smoke for the same property (always runs, no
/// sampling): a fixed mix through every scheduler × depth × channel
/// cell the property covers.
#[test]
fn des_goldens_match_tick_loop() {
    for scheduler in SCHEDULERS {
        for depth in DEPTHS {
            for channels in CHANNELS {
                assert_des_equals_tick(scheduler, channels, depth, &["ferret", "comm1"], 250);
            }
        }
    }
}
