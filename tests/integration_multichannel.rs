//! Multi-channel integration tests: the system routes requests to one
//! controller per channel and aggregates statistics.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_sim::{traces_for, RunConfig, System};
use nuat_types::{DramGeometry, SystemConfig};
use nuat_workloads::by_name;

fn two_channel_config(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_cores(cores);
    cfg.dram.geometry = DramGeometry {
        channels: 2,
        ..DramGeometry::default()
    };
    cfg
}

#[test]
fn two_channel_system_completes_and_conserves_requests() {
    let cfg = two_channel_config(1);
    let rc = RunConfig {
        mem_ops_per_core: 1500,
        ..RunConfig::quick()
    };
    let spec = by_name("comm1").unwrap();
    let traces = traces_for(&[spec], &cfg, &rc);
    let expected_reads = traces[0].reads();
    let r =
        System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces).run(rc.max_mc_cycles);
    assert!(r.completed);
    assert_eq!(r.stats.reads_completed, expected_reads);
}

#[test]
fn second_channel_relieves_pressure() {
    let rc = RunConfig {
        mem_ops_per_core: 2500,
        ..RunConfig::quick()
    };
    let spec = by_name("MT-fluid").unwrap(); // the most intense workload

    let one = {
        let cfg = SystemConfig::with_cores(1);
        let traces = traces_for(&[spec], &cfg, &rc);
        System::new(cfg, SchedulerKind::FrFcfsOpen, PbGrouping::paper(5), traces)
            .run(rc.max_mc_cycles)
    };
    let two = {
        let cfg = two_channel_config(1);
        let traces = traces_for(&[spec], &cfg, &rc);
        System::new(cfg, SchedulerKind::FrFcfsOpen, PbGrouping::paper(5), traces)
            .run(rc.max_mc_cycles)
    };
    assert!(one.completed && two.completed);
    assert!(
        two.avg_read_latency() < one.avg_read_latency(),
        "two channels {:.1} must beat one {:.1} under load",
        two.avg_read_latency(),
        one.avg_read_latency()
    );
    assert!(two.execution_cpu_cycles <= one.execution_cpu_cycles);
}

#[test]
fn multichannel_aggregation_equals_per_channel_sums() {
    // Run a 2-channel system keeping the per-channel controllers alive,
    // and check the aggregate the runner would report (built with
    // `ControllerStats::merge` / `DeviceStats::merge`) equals the
    // field-by-field sums over channels.
    let cfg = two_channel_config(1);
    let rc = RunConfig {
        mem_ops_per_core: 1500,
        ..RunConfig::quick()
    };
    let spec = by_name("comm1").unwrap();
    let traces = traces_for(&[spec], &cfg, &rc);
    let expected: Vec<_> = {
        let traces = traces.clone();
        let mut sys = System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces);
        // Drive to completion manually so the controllers stay
        // accessible afterwards.
        let mut guard = 0u64;
        while !sys.is_done() {
            sys.step();
            guard += 1;
            assert!(guard < rc.max_mc_cycles, "run did not complete");
        }
        while !sys.controllers().iter().all(|m| m.is_idle()) {
            sys.controllers_mut().iter_mut().for_each(|m| m.tick());
        }
        sys.controllers()
            .iter()
            .map(|m| (m.stats().clone(), *m.device().stats()))
            .collect()
    };
    let r =
        System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces).run(rc.max_mc_cycles);
    assert!(r.completed);
    // Both channels saw traffic, so the merge is not vacuous.
    assert!(expected.iter().all(|(s, _)| s.reads_completed > 0));
    let sum = |f: &dyn Fn(&nuat_core::ControllerStats) -> u64| -> u64 {
        expected.iter().map(|(s, _)| f(s)).sum()
    };
    assert_eq!(r.stats.reads_completed, sum(&|s| s.reads_completed));
    assert_eq!(r.stats.writes_drained, sum(&|s| s.writes_drained));
    assert_eq!(r.stats.total_read_latency, sum(&|s| s.total_read_latency));
    assert_eq!(r.stats.precharges, sum(&|s| s.precharges));
    assert_eq!(r.stats.refreshes, sum(&|s| s.refreshes));
    assert_eq!(
        r.stats.read_latency_hist.total(),
        sum(&|s| s.read_latency_hist.total())
    );
    let dsum = |f: &dyn Fn(&nuat_dram::DeviceStats) -> u64| -> u64 {
        expected.iter().map(|(_, d)| f(d)).sum()
    };
    assert_eq!(r.device.reduced_activates, dsum(&|d| d.reduced_activates));
    assert_eq!(r.device.trcd_cycles_saved, dsum(&|d| d.trcd_cycles_saved));
    assert_eq!(r.device.tras_cycles_saved, dsum(&|d| d.tras_cycles_saved));
    assert_eq!(r.device.bank_active_cycles, dsum(&|d| d.bank_active_cycles));
    assert_eq!(
        r.device.energy.activates,
        expected
            .iter()
            .map(|(_, d)| d.energy.activates)
            .sum::<u64>()
    );
    assert_eq!(
        r.device.energy.refreshes,
        expected
            .iter()
            .map(|(_, d)| d.energy.refreshes)
            .sum::<u64>()
    );
}

#[test]
fn nuat_works_identically_per_channel() {
    // NUAT on a 2-channel system must still satisfy the physics (run
    // completing is the assertion) and exploit slack on both channels.
    let cfg = two_channel_config(2);
    let rc = RunConfig {
        mem_ops_per_core: 1500,
        ..RunConfig::quick()
    };
    let specs = [by_name("ferret").unwrap(), by_name("mummer").unwrap()];
    let traces = traces_for(&specs, &cfg, &rc);
    let r =
        System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces).run(rc.max_mc_cycles);
    assert!(r.completed);
    assert!(r.device.reduced_activates > 0);
    // Aggregated PB histogram covers all activations.
    let acts = r.stats.acts_for_reads + r.stats.acts_for_writes;
    assert_eq!(r.stats.pb_act_histogram.iter().sum::<u64>(), acts);
}
