//! Safety-net tests: the DRAM device's charge validator must catch a
//! controller policy that promises timings the physics cannot honour —
//! the failure-injection counterpart of the conservativeness property
//! tests.

use nuat_core::{
    Candidate, MemoryController, MemoryRequest, PolicyView, RequestKind, SchedulerPolicy,
};
use nuat_types::{PhysAddr, RowTimings, SystemConfig};

/// A deliberately broken policy: PB0 timings for every row, regardless
/// of charge state.
#[derive(Debug)]
struct RecklessPolicy;

impl SchedulerPolicy for RecklessPolicy {
    fn name(&self) -> &'static str {
        "reckless"
    }

    fn act_timings(&self, _: &PolicyView<'_>, _: &MemoryRequest) -> RowTimings {
        // Claims every row is freshly refreshed. A physics violation
        // for any row more than ~6 ms past its refresh.
        RowTimings::new(8, 22, 12)
    }

    fn auto_precharge(&self, _: &PolicyView<'_>, _: &MemoryRequest) -> bool {
        false
    }

    fn choose(&mut self, _: &PolicyView<'_>, cands: &[Candidate]) -> Option<usize> {
        (!cands.is_empty()).then_some(0)
    }
}

/// Drives the controller with the reckless policy swapped in via the
/// test-only constructor below.
#[test]
#[should_panic(expected = "illegal ACT candidate")]
fn reckless_policy_is_caught_by_the_device() {
    let mut mc = MemoryController::with_policy(
        SystemConfig::default(),
        Box::new(RecklessPolicy),
        nuat_circuit::PbGrouping::paper(5),
    );
    // Row 100 starts ~64 ms stale (the refresh pointer begins at the
    // end of the row space), so the very first activation violates the
    // physical minimum and the controller panics loudly rather than
    // letting the request starve or corrupt.
    let g = nuat_types::DramGeometry::default();
    let addr = g
        .encode(
            nuat_types::DecodedAddr {
                channel: nuat_types::Channel::new(0),
                rank: nuat_types::Rank::new(0),
                bank: nuat_types::Bank::new(0),
                row: nuat_types::Row::new(100),
                col: nuat_types::Col::new(0),
            },
            nuat_types::AddressMapping::OpenPageBaseline,
        )
        .unwrap();
    mc.enqueue(0, RequestKind::Read, addr);
    mc.run_for(100);
}

/// The same reckless promise on a genuinely fresh row is fine — the
/// validator rejects physics violations, not tight timings per se.
#[test]
fn reckless_policy_survives_on_fresh_rows() {
    let mut mc = MemoryController::with_policy(
        SystemConfig::default(),
        Box::new(RecklessPolicy),
        nuat_circuit::PbGrouping::paper(5),
    );
    // Row 8191 was just refreshed at simulation start.
    let g = nuat_types::DramGeometry::default();
    let addr = g
        .encode(
            nuat_types::DecodedAddr {
                channel: nuat_types::Channel::new(0),
                rank: nuat_types::Rank::new(0),
                bank: nuat_types::Bank::new(0),
                row: nuat_types::Row::new(8191),
                col: nuat_types::Col::new(0),
            },
            nuat_types::AddressMapping::OpenPageBaseline,
        )
        .unwrap();
    mc.enqueue(0, RequestKind::Read, addr);
    mc.run_for(100);
    assert_eq!(mc.stats().reads_completed, 1);
    assert_eq!(mc.device().stats().reduced_activates, 1);
}

#[test]
fn phys_addr_roundtrip_sanity() {
    // Guard the encode helper the safety tests rely on.
    let g = nuat_types::DramGeometry::default();
    let decoded = nuat_types::DecodedAddr {
        channel: nuat_types::Channel::new(0),
        rank: nuat_types::Rank::new(0),
        bank: nuat_types::Bank::new(2),
        row: nuat_types::Row::new(4096),
        col: nuat_types::Col::new(17),
    };
    let addr: PhysAddr = g
        .encode(decoded, nuat_types::AddressMapping::OpenPageBaseline)
        .unwrap();
    assert_eq!(
        g.decode(addr, nuat_types::AddressMapping::OpenPageBaseline),
        decoded
    );
}
