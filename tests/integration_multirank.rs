//! Multi-rank integration tests: two ranks per channel, each with its
//! own refresh engine and LRRA — PBR must track them independently.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_sim::{traces_for, RunConfig, System};
use nuat_types::{DramGeometry, Rank, SystemConfig};
use nuat_workloads::by_name;

fn two_rank_config(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_cores(cores);
    cfg.dram.geometry = DramGeometry {
        ranks_per_channel: 2,
        ..DramGeometry::default()
    };
    cfg
}

#[test]
fn two_rank_system_completes_under_nuat() {
    let cfg = two_rank_config(1);
    let rc = RunConfig {
        mem_ops_per_core: 1500,
        ..RunConfig::quick()
    };
    // MT-canneal's 16 streams spread across both ranks' 8 banks each.
    let spec = by_name("MT-canneal").unwrap();
    let traces = traces_for(&[spec], &cfg, &rc);
    let expected_reads = traces[0].reads();
    let r =
        System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces).run(rc.max_mc_cycles);
    assert!(r.completed, "two-rank NUAT run must finish");
    assert_eq!(r.stats.reads_completed, expected_reads);
    assert!(r.device.reduced_activates > 0);
    // Both ranks must have been refreshed on schedule.
    assert!(r.stats.refreshes >= 2 * (r.mc_cycles / 50_000).saturating_sub(1));
}

#[test]
fn per_rank_refresh_engines_are_independent() {
    use nuat_core::{MemoryController, RequestKind};
    let cfg = two_rank_config(1);
    let mut mc = MemoryController::new(cfg, SchedulerKind::FrFcfsOpen);
    // Run past two refresh batch deadlines with no traffic.
    mc.run_for(2 * 50_000 + 2_000);
    let r0 = mc.refresh_engine(Rank::new(0)).batches_done();
    let r1 = mc.refresh_engine(Rank::new(1)).batches_done();
    assert_eq!(r0, 2, "rank 0 must have refreshed twice");
    assert_eq!(r1, 2, "rank 1 must have refreshed twice");
    // Keep one rank busy and confirm both still make their deadlines.
    let g = nuat_types::DramGeometry {
        ranks_per_channel: 2,
        ..Default::default()
    };
    for i in 0..32u32 {
        let addr = g
            .encode(
                nuat_types::DecodedAddr {
                    channel: nuat_types::Channel::new(0),
                    rank: Rank::new(1),
                    bank: nuat_types::Bank::new(i % 8),
                    row: nuat_types::Row::new(i * 3),
                    col: nuat_types::Col::new(0),
                },
                nuat_types::AddressMapping::OpenPageBaseline,
            )
            .unwrap();
        mc.enqueue(0, RequestKind::Read, addr);
    }
    mc.run_for(55_000);
    assert_eq!(mc.refresh_engine(Rank::new(0)).batches_done(), 3);
    assert_eq!(mc.refresh_engine(Rank::new(1)).batches_done(), 3);
    assert_eq!(mc.stats().reads_completed, 32);
}
