//! Smoke tests of the figure-regeneration experiments at reduced scale.

use nuat_sim::{LatencyExecReport, MulticoreEffects, PbSensitivity, RunConfig};
use nuat_workloads::by_name;

fn rc(ops: usize) -> RunConfig {
    RunConfig {
        mem_ops_per_core: ops,
        ..RunConfig::quick()
    }
}

#[test]
fn fig18_fig20_report_renders_all_sections() {
    let specs = [by_name("libq").unwrap(), by_name("ferret").unwrap()];
    let rep = LatencyExecReport::run_subset(&specs, &rc(800));
    let text = rep.to_string();
    assert!(text.contains("Fig. 18"));
    assert!(text.contains("Fig. 20"));
    assert!(text.contains("PB3+4"));
    assert!(text.contains("libq"));
    assert!(text.contains("ferret"));
}

#[test]
fn fig18_averages_are_finite_and_sane() {
    let specs = [by_name("comm1").unwrap(), by_name("MT-fluid").unwrap()];
    let rep = LatencyExecReport::run_subset(&specs, &rc(1000));
    for v in [
        rep.avg_latency_reduction_vs_open(),
        rep.avg_latency_reduction_vs_close(),
        rep.avg_exec_improvement_vs_open(),
        rep.avg_exec_improvement_vs_close(),
    ] {
        assert!(v.is_finite());
        assert!(
            (-30.0..60.0).contains(&v),
            "average {v}% out of plausible range"
        );
    }
}

#[test]
fn fig21_sensitivity_grid_has_monotone_trend_for_single_core() {
    // 4000 ops per workload: at shorter runs the 3PB-vs-5PB ordering is
    // inside the scheduling-noise band and flips with the RNG stream.
    let s = PbSensitivity::run(&[1], &[2, 3, 5], 4, 1, &rc(4000));
    let saved = s.saved_cycles();
    assert_eq!(saved.len(), 1);
    assert_eq!(saved[0].len(), 3);
    assert_eq!(saved[0][0], 0.0);
    // More PBs must not lose cycles relative to fewer (small tolerance
    // for scheduling noise).
    assert!(saved[0][2] >= saved[0][1] - 0.5, "{:?}", saved);
}

#[test]
fn fig22_improvement_row_per_core_count() {
    let m = MulticoreEffects::run(&[1, 2], 2, 2, &rc(600));
    assert_eq!(m.rows.len(), 2);
    for row in &m.rows {
        assert!(row.vs_open_pct.is_finite());
        assert!(row.vs_close_pct.is_finite());
        assert!(row.combos > 0);
    }
    assert!(m.to_string().contains("Fig. 22"));
}

#[test]
fn leslie_shows_the_largest_hit_rate_gap() {
    // Fig. 19 diagnostic: leslie's open-vs-close hit-rate gap should be
    // the largest among a representative sample, as in the paper.
    // Needs enough accesses for several of leslie's locality phases
    // (600 accesses each) to develop.
    let sample = ["leslie", "comm3", "ferret"];
    let rep = LatencyExecReport::run_subset(&sample.map(|n| by_name(n).unwrap()), &rc(4800));
    let gaps: Vec<(&str, f64)> = rep
        .rows
        .iter()
        .map(|r| (r.workload, r.hit_rate_gap()))
        .collect();
    let leslie_gap = gaps.iter().find(|(n, _)| *n == "leslie").unwrap().1;
    for (name, gap) in &gaps {
        if *name != "leslie" {
            assert!(
                leslie_gap >= *gap - 0.05,
                "leslie gap {leslie_gap:.2} should dominate {name}'s {gap:.2}"
            );
        }
    }
}
