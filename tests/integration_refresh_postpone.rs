//! Refresh-postponement integration: deferring REF commands to serve
//! demand (DDR3 allows up to 8) must stay physically safe because the
//! controller derates PBR by the same budget.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_sim::{run_mix, RunConfig};
use nuat_types::{Rank, SystemConfig};
use nuat_workloads::by_name;

fn rc(ops: usize) -> RunConfig {
    RunConfig {
        mem_ops_per_core: ops,
        ..RunConfig::quick()
    }
}

#[test]
fn postponement_defers_refreshes_under_load_and_stays_safe() {
    use nuat_core::{MemoryController, RequestKind};
    let mut cfg = SystemConfig::default();
    cfg.controller.refresh_postpone_batches = 4;
    let mut mc = MemoryController::new(cfg, SchedulerKind::Nuat);

    // Sustained demand across banks, spanning two refresh due times.
    let g = nuat_types::DramGeometry::default();
    let enq = |row: u32, bank: u32, col: u32, mc: &mut MemoryController| {
        let addr = g
            .encode(
                nuat_types::DecodedAddr {
                    channel: nuat_types::Channel::new(0),
                    rank: Rank::new(0),
                    bank: nuat_types::Bank::new(bank),
                    row: nuat_types::Row::new(row),
                    col: nuat_types::Col::new(col),
                },
                nuat_types::AddressMapping::OpenPageBaseline,
            )
            .unwrap();
        mc.enqueue(0, RequestKind::Read, addr);
    };
    let mut i = 0u32;
    while mc.now().raw() < 120_000 {
        if mc.can_accept(RequestKind::Read) && i.is_multiple_of(12) {
            enq(8191 - (i % 512), i % 8, i % 64, &mut mc);
        }
        mc.tick();
        i += 1;
    }
    // Drain.
    mc.run_for(5_000);
    let engine = mc.refresh_engine(Rank::new(0));
    assert!(engine.batches_done() >= 2, "refreshes must still happen");
    assert!(
        engine.postponed_batches() > 0,
        "continuous demand must have postponed at least one batch"
    );
    assert!(mc.stats().reads_completed > 0);
    // Physics held: completing without a panic is the safety assertion
    // (the device validates every ACT).
}

#[test]
fn postponement_does_not_regress_throughput() {
    let spec = by_name("ferret").unwrap();

    let prompt = run_mix(
        &[spec],
        SchedulerKind::Nuat,
        PbGrouping::paper(5),
        &rc(1500),
    );

    // Postponing run: same workload through the runner with a patched
    // config is not directly expressible, so compare via the controller
    // config on the System path.
    use nuat_sim::{traces_for, System};
    let mut cfg = SystemConfig::with_cores(1);
    cfg.controller.refresh_postpone_batches = 8;
    let traces = traces_for(&[spec], &cfg, &rc(1500));
    let postponed =
        System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces).run(20_000_000);

    assert!(prompt.completed && postponed.completed);
    // Derated PB assignments cost a little raw slack; deferring REFs
    // out of the demand path wins some back. Either way the difference
    // must be small.
    let ratio = postponed.avg_read_latency() / prompt.avg_read_latency();
    assert!(
        (0.8..1.2).contains(&ratio),
        "postponement changed latency by {ratio:.2}x"
    );
}

#[test]
fn config_rejects_excessive_postpone_budget() {
    let mut cfg = SystemConfig::default();
    cfg.controller.refresh_postpone_batches = 9;
    assert!(
        cfg.validate().is_err(),
        "DDR3 permits at most 8 postponed REFs"
    );
}

/// PR-8 satellite: the event wheel's lazy-deletion overflow heap must
/// stay `O(live entries)` on long refresh-heavy runs. Every tREFI the
/// rank markers re-key (a far-future key lands in the overflow heap and
/// the superseded one rots in place), so an unbounded heap would grow
/// by one slot per refresh forever; the stale-majority compaction in
/// `wheel.rs` caps it at twice the live population. The wheel holds one
/// live slot per bank plus one rank marker each, so the bound below is
/// `2 x (banks + ranks)` with one slack slot for a just-pushed key.
#[test]
fn wheel_overflow_heap_stays_bounded_on_refresh_heavy_run() {
    use nuat_core::{MemoryController, RequestKind};
    let cfg = SystemConfig::default();
    let g = cfg.dram.geometry;
    let live = (g.ranks_per_channel * g.banks_per_rank + g.ranks_per_channel) as usize;
    let mut mc = MemoryController::new(cfg, SchedulerKind::Nuat);

    // A sparse read trickle (one request every ~4k cycles, far below
    // one per tREFI) keeps bank re-keys flowing without ever letting
    // demand mask the refresh cadence that churns the heap.
    let mut i = 0u32;
    while mc.now().raw() < 2_000_000 {
        if mc.can_accept(RequestKind::Read) {
            let addr = g
                .encode(
                    nuat_types::DecodedAddr {
                        channel: nuat_types::Channel::new(0),
                        rank: Rank::new(i % g.ranks_per_channel as u32),
                        bank: nuat_types::Bank::new(i % g.banks_per_rank as u32),
                        row: nuat_types::Row::new(i % 512),
                        col: nuat_types::Col::new(i % 64),
                    },
                    nuat_types::AddressMapping::OpenPageBaseline,
                )
                .unwrap();
            mc.enqueue(0, RequestKind::Read, addr);
        }
        mc.run_for(4_096);
        i += 1;
        assert!(
            mc.wheel_overflow_len() <= 2 * live + 1,
            "overflow heap holds {} slots for {} wheel entries at cycle {} — \
             compaction is not keeping the heap O(live)",
            mc.wheel_overflow_len(),
            live,
            mc.now().raw()
        );
    }
    // ~40 batches at the default 50k-cycle batch interval: each one
    // re-keys its rank marker (plus a whole-rank sweep), so the heap
    // saw hundreds of far-future pushes while staying bounded above.
    assert!(
        mc.refresh_engine(Rank::new(0)).batches_done() >= 30,
        "run was not refresh-heavy enough to exercise the heap"
    );
}
