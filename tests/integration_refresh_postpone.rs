//! Refresh-postponement integration: deferring REF commands to serve
//! demand (DDR3 allows up to 8) must stay physically safe because the
//! controller derates PBR by the same budget.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_sim::{run_mix, RunConfig};
use nuat_types::{Rank, SystemConfig};
use nuat_workloads::by_name;

fn rc(ops: usize) -> RunConfig {
    RunConfig {
        mem_ops_per_core: ops,
        ..RunConfig::quick()
    }
}

#[test]
fn postponement_defers_refreshes_under_load_and_stays_safe() {
    use nuat_core::{MemoryController, RequestKind};
    let mut cfg = SystemConfig::default();
    cfg.controller.refresh_postpone_batches = 4;
    let mut mc = MemoryController::new(cfg, SchedulerKind::Nuat);

    // Sustained demand across banks, spanning two refresh due times.
    let g = nuat_types::DramGeometry::default();
    let enq = |row: u32, bank: u32, col: u32, mc: &mut MemoryController| {
        let addr = g
            .encode(
                nuat_types::DecodedAddr {
                    channel: nuat_types::Channel::new(0),
                    rank: Rank::new(0),
                    bank: nuat_types::Bank::new(bank),
                    row: nuat_types::Row::new(row),
                    col: nuat_types::Col::new(col),
                },
                nuat_types::AddressMapping::OpenPageBaseline,
            )
            .unwrap();
        mc.enqueue(0, RequestKind::Read, addr);
    };
    let mut i = 0u32;
    while mc.now().raw() < 120_000 {
        if mc.can_accept(RequestKind::Read) && i.is_multiple_of(12) {
            enq(8191 - (i % 512), i % 8, i % 64, &mut mc);
        }
        mc.tick();
        i += 1;
    }
    // Drain.
    mc.run_for(5_000);
    let engine = mc.refresh_engine(Rank::new(0));
    assert!(engine.batches_done() >= 2, "refreshes must still happen");
    assert!(
        engine.postponed_batches() > 0,
        "continuous demand must have postponed at least one batch"
    );
    assert!(mc.stats().reads_completed > 0);
    // Physics held: completing without a panic is the safety assertion
    // (the device validates every ACT).
}

#[test]
fn postponement_does_not_regress_throughput() {
    let spec = by_name("ferret").unwrap();

    let prompt = run_mix(
        &[spec],
        SchedulerKind::Nuat,
        PbGrouping::paper(5),
        &rc(1500),
    );

    // Postponing run: same workload through the runner with a patched
    // config is not directly expressible, so compare via the controller
    // config on the System path.
    use nuat_sim::{traces_for, System};
    let mut cfg = SystemConfig::with_cores(1);
    cfg.controller.refresh_postpone_batches = 8;
    let traces = traces_for(&[spec], &cfg, &rc(1500));
    let postponed =
        System::new(cfg, SchedulerKind::Nuat, PbGrouping::paper(5), traces).run(20_000_000);

    assert!(prompt.completed && postponed.completed);
    // Derated PB assignments cost a little raw slack; deferring REFs
    // out of the demand path wins some back. Either way the difference
    // must be small.
    let ratio = postponed.avg_read_latency() / prompt.avg_read_latency();
    assert!(
        (0.8..1.2).contains(&ratio),
        "postponement changed latency by {ratio:.2}x"
    );
}

#[test]
fn config_rejects_excessive_postpone_budget() {
    let mut cfg = SystemConfig::default();
    cfg.controller.refresh_postpone_batches = 9;
    assert!(
        cfg.validate().is_err(),
        "DDR3 permits at most 8 postponed REFs"
    );
}
