//! Property test for incremental ready-set scheduling: a wheel-driven
//! run (the default) must be byte-identical to the legacy full-bank
//! scan (the `NUAT_NO_WHEEL=1` escape hatch, forced per-controller via
//! `MemoryController::set_wheel`) — same stats fingerprint, same
//! per-channel command/event stream, same epoch samples — for every
//! scheduler, random workload pairs, and random queue depths.
//!
//! The one legitimate divergence is the *skip structure*: the wheel's
//! busy-event horizon is often tighter than the scan's (it can skip
//! past cycles the scan pessimistically wakes on, and vice versa after
//! an issue), so the split between "ticked" and "bulk-advanced" quiet
//! cycles differs while every observable outcome — commands, their
//! cycles, completion times, energy — stays bit-exact. Fingerprints
//! therefore exclude `cycles_skipped`, epoch samples are compared with
//! that single field normalized to zero, and `QuietSpan` events (the
//! per-span encoding of the same split) are filtered from the compared
//! event streams. Every command, enqueue, read completion and power
//! transition must still match byte for byte.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_obs::{EpochSample, MemorySink, TraceEvent};
use nuat_sim::{traces_for, RunConfig, SimResult, System};
use nuat_types::{DramGeometry, SystemConfig};
use nuat_workloads::by_name;
use proptest::prelude::*;

const WORKLOADS: [&str; 6] = ["black", "face", "ferret", "comm1", "libq", "mummer"];
const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Fcfs,
    SchedulerKind::FrFcfsOpen,
    SchedulerKind::FrFcfsClose,
    SchedulerKind::Nuat,
];

/// Every scalar a run produces, bit-exact (mirrors the determinism
/// guard's fingerprint; `cycles_skipped` deliberately excluded — see
/// the module docs).
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &SimResult,
) -> (
    u64,
    u64,
    u64,
    u64,
    u64,
    nuat_dram::DeviceStats,
    u64,
    u64,
    Vec<u64>,
) {
    (
        r.mc_cycles,
        r.execution_cpu_cycles,
        r.stats.total_read_latency,
        r.stats.reads_completed,
        r.stats.writes_drained,
        r.device,
        r.powerdown_cycles,
        r.energy_pj.to_bits(),
        r.core_finish_cpu_cycles.clone(),
    )
}

/// Epoch samples with the skip-split normalized out.
fn normalized_epochs(sink: &MemorySink) -> Vec<EpochSample> {
    sink.epochs
        .iter()
        .map(|e| EpochSample {
            cycles_skipped: 0,
            ..e.clone()
        })
        .collect()
}

/// The observable event stream: everything except `QuietSpan` (the
/// per-span encoding of the skip split — see the module docs).
fn observable_events(sink: &MemorySink) -> Vec<TraceEvent> {
    sink.events
        .iter()
        .filter(|e| !matches!(e, TraceEvent::QuietSpan { .. }))
        .copied()
        .collect()
}

/// One instrumented run with the ready-set wheel forced on or off on
/// every channel controller.
fn run_with(
    wheel: bool,
    scheduler: SchedulerKind,
    channels: u64,
    depth: usize,
    workloads: &[&str],
    mem_ops: usize,
) -> (SimResult, Vec<MemorySink>) {
    let mut cfg = SystemConfig::with_cores(workloads.len());
    cfg.dram.geometry = DramGeometry {
        channels,
        ..DramGeometry::default()
    };
    cfg.controller.read_queue_capacity = depth;
    cfg.controller.write_queue_capacity = depth;
    cfg.controller.write_high_watermark = depth * 40 / 64;
    cfg.controller.write_low_watermark = depth * 20 / 64;
    let rc = RunConfig {
        mem_ops_per_core: mem_ops,
        ..RunConfig::quick()
    };
    let specs: Vec<_> = workloads.iter().map(|w| by_name(w).unwrap()).collect();
    let traces = traces_for(&specs, &cfg, &rc);
    let mut sys = System::with_sinks(
        cfg,
        scheduler,
        PbGrouping::paper(5),
        traces,
        vec![MemorySink::default(); channels as usize],
        None,
    );
    for mc in sys.controllers_mut() {
        mc.set_wheel(wheel);
    }
    sys.run_traced(rc.max_mc_cycles, 0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Wheel vs full scan, all four schedulers per sampled
    /// configuration: fingerprints, per-channel event streams (every
    /// DRAM command in issue order) and normalized epoch samples must
    /// match exactly.
    #[test]
    fn prop_wheel_equals_scan(
        channels in prop_oneof![Just(1u64), Just(2u64)],
        depth in prop_oneof![Just(16usize), Just(64usize), Just(128usize)],
        w0 in 0usize..WORKLOADS.len(),
        w1 in 0usize..WORKLOADS.len(),
        mem_ops in 150usize..400,
    ) {
        let workloads = [WORKLOADS[w0], WORKLOADS[w1]];
        for scheduler in SCHEDULERS {
            let (wheel, wheel_sinks) =
                run_with(true, scheduler, channels, depth, &workloads, mem_ops);
            let (scan, scan_sinks) =
                run_with(false, scheduler, channels, depth, &workloads, mem_ops);
            prop_assert!(wheel.completed, "{:?} wheel run must finish", scheduler);
            prop_assert_eq!(
                fingerprint(&wheel),
                fingerprint(&scan),
                "fingerprint diverged for {:?} ({} channels, depth {})",
                scheduler, channels, depth
            );
            prop_assert_eq!(wheel_sinks.len(), scan_sinks.len());
            for (ch, (w, s)) in wheel_sinks.iter().zip(&scan_sinks).enumerate() {
                let (we, se) = (observable_events(w), observable_events(s));
                prop_assert!(
                    !we.is_empty(),
                    "channel {} observed no events for {:?}", ch, scheduler
                );
                prop_assert!(
                    we == se,
                    "channel {} event stream diverged for {:?}", ch, scheduler
                );
                prop_assert!(
                    normalized_epochs(w) == normalized_epochs(s),
                    "channel {} epoch samples diverged for {:?}", ch, scheduler
                );
                prop_assert!(w.finished && s.finished);
            }
        }
    }
}

/// Deterministic smoke for the same property (always runs, no
/// sampling): two channels, every scheduler, the stock depth.
#[test]
fn wheel_two_channel_goldens_match_scan() {
    for scheduler in SCHEDULERS {
        let workloads = ["ferret", "comm1"];
        let (wheel, wheel_sinks) = run_with(true, scheduler, 2, 64, &workloads, 600);
        let (scan, scan_sinks) = run_with(false, scheduler, 2, 64, &workloads, 600);
        assert!(wheel.completed);
        assert_eq!(fingerprint(&wheel), fingerprint(&scan), "{scheduler:?}");
        for (w, s) in wheel_sinks.iter().zip(&scan_sinks) {
            assert!(
                observable_events(w) == observable_events(s),
                "{scheduler:?} command/event stream"
            );
            assert!(
                normalized_epochs(w) == normalized_epochs(s),
                "{scheduler:?} epoch samples"
            );
        }
    }
}
