//! Cross-crate integration tests: trace generation -> CPU model ->
//! controller -> DRAM device, end to end.

use nuat_circuit::PbGrouping;
use nuat_core::SchedulerKind;
use nuat_sim::{run_single, RunConfig, System};
use nuat_types::{DramGeometry, SystemConfig};
use nuat_workloads::{by_name, TraceGenerator};

fn rc(ops: usize) -> RunConfig {
    RunConfig {
        mem_ops_per_core: ops,
        ..RunConfig::quick()
    }
}

#[test]
fn request_accounting_is_conserved() {
    let spec = by_name("comm2").unwrap();
    let trace = TraceGenerator::new(spec, DramGeometry::default(), 3).generate(1000);
    let expected_reads = trace.reads();
    let expected_writes = trace.mem_ops() - expected_reads;
    let sys = System::new(
        SystemConfig::with_cores(1),
        SchedulerKind::Nuat,
        PbGrouping::paper(5),
        vec![trace],
    );
    let r = sys.run(30_000_000);
    assert!(r.completed);
    assert_eq!(r.stats.reads_completed, expected_reads);
    assert_eq!(r.stats.writes_drained, expected_writes);
    // Every column access maps to exactly one request.
    assert_eq!(r.stats.cols_read, expected_reads);
    assert_eq!(r.stats.cols_write, expected_writes);
}

#[test]
fn refresh_rate_matches_the_schedule() {
    let r = run_single(
        by_name("black").unwrap(),
        SchedulerKind::FrFcfsOpen,
        &rc(2000),
    );
    // One batch per 8 * tREFI = 50,000 cycles.
    let expected = r.mc_cycles / 50_000;
    assert!(
        r.stats.refreshes >= expected.saturating_sub(1) && r.stats.refreshes <= expected + 1,
        "refreshes {} vs expected ~{expected}",
        r.stats.refreshes
    );
}

#[test]
fn read_latency_never_beats_the_physical_floor() {
    // No read can finish faster than a same-cycle row hit:
    // CL + BL/2 = 15 cycles.
    let r = run_single(by_name("libq").unwrap(), SchedulerKind::Nuat, &rc(1500));
    let min = r.stats.min_read_latency.expect("reads completed");
    assert!(min >= 15, "min read latency {min} beats CL + BL/2");
    assert!(r.stats.max_read_latency >= min);
}

#[test]
fn nuat_saves_trcd_cycles_proportionally_to_fast_pb_hits() {
    let r = run_single(by_name("ferret").unwrap(), SchedulerKind::Nuat, &rc(2000));
    let acts = r.stats.acts_for_reads + r.stats.acts_for_writes;
    assert!(acts > 0);
    // PB0..PB3 activations all save at least one tRCD cycle.
    let dist = r.stats.pb_distribution();
    let fast_share: f64 = dist[..4].iter().sum();
    if fast_share > 0.0 {
        assert!(r.device.reduced_activates > 0);
        assert!(r.device.trcd_cycles_saved >= r.device.reduced_activates);
    }
    // PB distribution sums to 1.
    let total: f64 = dist.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn energy_accounting_is_positive_and_scales_with_work() {
    let small = run_single(
        by_name("swapt").unwrap(),
        SchedulerKind::FrFcfsOpen,
        &rc(300),
    );
    let large = run_single(
        by_name("swapt").unwrap(),
        SchedulerKind::FrFcfsOpen,
        &rc(1500),
    );
    assert!(small.energy_pj > 0.0);
    assert!(large.energy_pj > small.energy_pj);
}

#[test]
fn multicore_shares_bandwidth_fairly_enough() {
    use nuat_sim::run_mix;
    let spec = by_name("comm3").unwrap();
    let r = run_mix(
        &[spec, spec, spec, spec],
        SchedulerKind::Nuat,
        PbGrouping::paper(5),
        &rc(600),
    );
    assert!(r.completed);
    let max = *r.stats.per_core_reads.iter().max().unwrap() as f64;
    let min = *r.stats.per_core_reads.iter().min().unwrap() as f64;
    assert!(min > 0.0);
    assert!(
        max / min < 1.5,
        "same workload on all cores must finish comparably"
    );
}

#[test]
fn higher_load_increases_latency() {
    let light = run_single(
        by_name("black").unwrap(),
        SchedulerKind::FrFcfsOpen,
        &rc(1000),
    );
    let heavy = run_single(
        by_name("MT-canneal").unwrap(),
        SchedulerKind::FrFcfsOpen,
        &rc(1000),
    );
    assert!(
        heavy.avg_read_latency() > light.avg_read_latency(),
        "a 24-MPKI scattered workload must see higher latency than a 4-MPKI one"
    );
}
